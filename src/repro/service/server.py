"""The asyncio serving layer: shards, worker processes, supervisor, client.

Wire protocol (one unix socket per shard): length-prefixed JSON --
4-byte big-endian frame length, then a UTF-8 JSON object.  Block
payloads travel hex-encoded.  Requests carry ``op`` plus op-specific
fields; responses are ``{"ok": true, ...}`` or the structured error
frame :func:`repro.service.errors.to_response` produces.

Operations::

    provision {tenant, preset?, region_kb?, keystream?, resilience?,
               quota?...}
    write     {tenant, address, data}       one acknowledged write
    batch     {tenant, writes: [[addr, data], ...]}  one group-commit
    read      {tenant, address}
    stat      {tenant}
    drain     {tenant} | retire {tenant} | drain_shard {} | ping {}

Concurrency model: one asyncio event loop per shard worker serializes
engine access (the engines are plain mutable python objects); many
connections interleave at frame granularity.  Scaling comes from
*sharding* -- tenants are partitioned across worker processes by
:func:`repro.service.router.shard_of`, and the client routes each
request itself, so shards share nothing but the filesystem root.

Overload and deadline discipline: every connection enqueues requests
onto one bounded dispatch queue per shard; a single dispatcher task
drains it.  A request arriving at a full queue is *shed* with a typed
:class:`Overloaded` refusal before any work (and before any quota
charge); a request whose ``deadline_ms`` elapsed while it queued is
refused with :class:`DeadlineExceeded` -- also strictly before
dispatch, so a deadline refusal never half-applies anything.  Mutating
requests may carry an ``idem`` key; the shard caches the success
response so a client retry after an ambiguous failure cannot double
apply (re-applying the same (address, data) write is already
convergent -- the cache makes the *response* exactly-once too).

The supervisor owns the worker processes: it can kill one (``SIGKILL``,
the crash the durability plane exists for) and restart it; the restarted
worker replays its tenants' journals via the persist recovery state
machine before accepting its first request.  The client wraps each
shard connection in a circuit breaker: consecutive transport failures
trip it open and calls fail fast until a half-open probe finds the
replacement worker answering.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import multiprocessing
import os
import pathlib
import random
import signal
import struct
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from repro.faultfs import FaultProfile, StorageFault
from repro.obs.catalog import SERVICE_OPS, SERVICE_REJECTIONS
from repro.obs.metrics import MetricRegistry
from repro.service.backoff import BackoffPolicy
from repro.service.breaker import BreakerConfig, CircuitBreaker
from repro.service.endpoints import health_payload, metrics_payload, serve_http
from repro.service.errors import (
    DeadlineExceeded,
    DrainInProgress,
    Overloaded,
    ServiceError,
    ShardUnavailable,
    StorageFaulted,
    TenantNotFound,
    from_response,
    to_response,
)
from repro.service.lifecycle import drain_tenants, recover_tenants
from repro.service.quota import QuotaConfig, TenantQuota
from repro.service.router import ShardRouter
from repro.service.tenant import (
    BLOCK_BYTES,
    Tenant,
    TenantSpec,
    TenantState,
)

PROTOCOL_SCHEMA = "repro.service.proto/1"
_LEN = struct.Struct(">I")
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: closed sets shared with the metric catalog -- the request ops and
#: rejection codes below are the single source of truth for both the
#: dispatch table and the ``service.*`` metric names.
OPS = SERVICE_OPS
REJECTION_CODES = SERVICE_REJECTIONS


def encode_frame(payload: dict[str, Any]) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(body)} bytes exceeds the cap")
    return _LEN.pack(len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any]:
    header = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {length} bytes exceeds the cap")
    body = await reader.readexactly(length)
    payload = json.loads(body.decode())
    if not isinstance(payload, dict):
        raise ValueError("frames must carry a JSON object")
    return payload


async def write_frame(
    writer: asyncio.StreamWriter, payload: dict[str, Any]
) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


@dataclass(frozen=True)
class ShardOptions:
    """Resilience knobs one shard worker runs under.

    Plain picklable data: the supervisor ships it to spawned workers.
    ``fault_profile`` arms every tenant's :class:`FaultFS` with
    rate-based storage faults; ``fault_boost_tenant`` (if set) gets
    ``fault_boost_profile`` instead, so a chaos campaign can hammer one
    victim while the rest see background rates.
    """

    max_queue_depth: int = 64
    degraded_after: int = 3
    idem_capacity: int = 256
    fault_profile: FaultProfile | None = None
    fault_boost_tenant: str = ""
    fault_boost_profile: FaultProfile | None = None

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.degraded_after < 1:
            raise ValueError("degraded_after must be >= 1")
        if self.idem_capacity < 1:
            raise ValueError("idem_capacity must be >= 1")

    def profile_for(self, tenant_id: str) -> FaultProfile | None:
        if tenant_id == self.fault_boost_tenant:
            return self.fault_boost_profile
        return self.fault_profile


class Shard:
    """One worker's state: its tenants, quotas, and request handlers."""

    def __init__(
        self,
        root: str | pathlib.Path,
        shard_index: int,
        num_shards: int,
        secret_seed: int,
        registry: MetricRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
        options: ShardOptions | None = None,
    ) -> None:
        self.router = ShardRouter(root, num_shards)
        self.root = pathlib.Path(root)
        self.shard_index = shard_index
        self.secret_seed = secret_seed
        self.registry = registry if registry is not None else MetricRegistry()
        self.clock = clock
        self.options = options if options is not None else ShardOptions()
        self.tenants: dict[str, Tenant] = {}
        self.quotas: dict[str, TenantQuota] = {}
        self.retired: set[str] = set()
        self.draining = False
        self.recovery_summary: dict[str, Any] = {}
        reg = self.registry
        self._m_requests = {
            op: reg.counter(f"service.request.{op}") for op in OPS
        }
        self._h_latency = {
            op: reg.histogram(f"service.latency.{op}") for op in OPS
        }
        self._m_rejected = {
            code: reg.counter(f"service.rejected.{code}")
            for code in REJECTION_CODES
        }
        self._m_bytes_written = reg.counter("service.bytes.written")
        self._m_bytes_read = reg.counter("service.bytes.read")
        self._m_conn_accepted = reg.counter("service.conn.accepted")
        self._m_conn_closed = reg.counter("service.conn.closed")
        self._m_recovered = reg.counter("service.recovery.tenants")
        self._m_drained = reg.counter("service.drain.tenants")
        self._g_active = reg.gauge("service.tenants.active")
        self._g_draining = reg.gauge("service.tenants.draining")
        self._g_retired = reg.gauge("service.tenants.retired")
        self._m_deadline_expired = reg.counter("service.deadline.expired")
        self._h_deadline_wait = reg.histogram("service.deadline.wait_ms")
        self._m_shed = reg.counter("service.overload.shed")
        self._g_queue = reg.gauge("service.queue.depth")
        self._m_idem_hits = reg.counter("service.idem.hits")
        self._m_idem_stored = reg.counter("service.idem.stored")
        self._m_degraded_entered = reg.counter("service.degraded.entered")
        self._g_degraded = reg.gauge("service.degraded.active")
        #: bounded idempotency cache: key -> the success response
        self._idem: OrderedDict[str, dict[str, Any]] = OrderedDict()
        #: bounded dispatch queue; exists only while serve() runs (the
        #: in-process test path calls submit() without a queue and gets
        #: direct dispatch)
        self._queue: asyncio.Queue[
            tuple[dict[str, Any], asyncio.Future, float]
        ] | None = None
        self._handlers: dict[str, Callable[[dict[str, Any]], dict[str, Any]]] = {
            "provision": self._op_provision,
            "write": self._op_write,
            "batch": self._op_batch,
            "read": self._op_read,
            "stat": self._op_stat,
            "drain": self._op_drain,
            "retire": self._op_retire,
            "drain_shard": self._op_drain_shard,
            "ping": self._op_ping,
        }

    # -- lifecycle ----------------------------------------------------------

    def recover(self) -> dict[str, Any]:
        """Recover every owned tenant from disk before serving."""
        tenants, summary = recover_tenants(
            self.root,
            self.secret_seed,
            shard=self.shard_index,
            num_shards=self.router.num_shards,
            fault_profiles=self.options.profile_for,
            degraded_after=self.options.degraded_after,
        )
        self.tenants = tenants
        self.retired = {
            tenant_id
            for tenant_id, entry in summary.tenants.items()
            if entry.get("skipped")
        }
        for tenant in tenants.values():
            self.quotas[tenant.tenant_id] = TenantQuota(
                tenant.tenant_id, tenant.spec.quota, self.clock
            )
        self._m_recovered.inc(len(tenants))
        self.recovery_summary = summary.to_json()
        self._refresh_gauges()
        return self.recovery_summary

    def drain_all(self) -> dict[str, Any]:
        """Graceful shard drain: every tenant flushed and checkpointed."""
        self.draining = True
        live = [
            tenant
            for tenant in self.tenants.values()
            if tenant.state is not TenantState.RETIRED
        ]
        report = drain_tenants(live)
        self._m_drained.inc(report.count)
        self._refresh_gauges()
        return report.to_json()

    def _refresh_gauges(self) -> None:
        states = [tenant.state for tenant in self.tenants.values()]
        self._g_active.set(states.count(TenantState.ACTIVE))
        self._g_draining.set(states.count(TenantState.DRAINING))
        self._g_retired.set(
            states.count(TenantState.RETIRED) + len(self.retired)
        )
        self._g_degraded.set(
            sum(
                1
                for tenant in self.tenants.values()
                if tenant.degraded_reason is not None
            )
        )

    # -- request dispatch ---------------------------------------------------

    def handle_request(self, request: dict[str, Any]) -> dict[str, Any]:
        op = str(request.get("op", ""))
        handler = self._handlers.get(op)
        if handler is None:
            self._m_rejected["internal"].inc()
            return to_response(
                ServiceError(f"unknown op {op!r}", known_ops=list(OPS))
            )
        self._m_requests[op].inc()
        start = self.clock()
        try:
            response = handler(request)
            response.setdefault("ok", True)
            return response
        except ServiceError as error:
            self._m_rejected.get(
                error.code, self._m_rejected["internal"]
            ).inc()
            return to_response(error)
        except StorageFault as fault:
            # The tenant's backing store refused a durable mutation.
            # Not acknowledged, typed, and accounted against the
            # tenant's degraded-mode budget -- never a shard crash.
            tenant = self.tenants.get(str(request.get("tenant", "")))
            if tenant is not None and tenant.record_storage_fault(fault):
                self._m_degraded_entered.inc()
                self._refresh_gauges()
            self._m_rejected["storage_fault"].inc()
            return to_response(
                StorageFaulted(
                    f"storage fault during {op!r}: {fault}",
                    op=op,
                    kind=fault.kind.value,
                    fs_step=fault.step,
                )
            )
        except (KeyError, TypeError, ValueError) as error:
            # Malformed requests (missing fields, bad hex, unaligned
            # addresses) are client errors, reported structurally --
            # they must never tear down the shard.
            self._m_rejected["internal"].inc()
            return to_response(
                ServiceError(f"bad request for op {op!r}: {error}", op=op)
            )
        finally:
            self._h_latency[op].observe((self.clock() - start) * 1000.0)

    # -- the dispatch queue: shedding, deadlines, idempotency -----------------

    async def submit(self, request: dict[str, Any]) -> dict[str, Any]:
        """Admit one request: shed, enqueue, and await its response.

        Shedding happens *here*, at admission: a full queue refuses
        with :class:`Overloaded` before the request costs anything
        (no quota charge, no engine work).  Without a running queue
        (in-process tests, no serve() loop) dispatch is direct.
        """
        queue = self._queue
        if queue is None:
            return self._served(request)
        if queue.qsize() >= self.options.max_queue_depth:
            self._m_shed.inc()
            self._m_rejected["overloaded"].inc()
            return to_response(
                Overloaded(
                    f"shard {self.shard_index} dispatch queue is full "
                    f"({self.options.max_queue_depth} deep); shed",
                    shard=self.shard_index,
                    queue_depth=queue.qsize(),
                )
            )
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        queue.put_nowait((request, future, self.clock()))
        self._g_queue.set(queue.qsize())
        return await future

    async def _dispatch_loop(self) -> None:
        """The single dispatcher: drains the queue in arrival order."""
        queue = self._queue
        assert queue is not None
        while True:
            request, future, enqueued_at = await queue.get()
            self._g_queue.set(queue.qsize())
            waited_ms = (self.clock() - enqueued_at) * 1000.0
            self._h_deadline_wait.observe(waited_ms)
            response = self._expired(request, waited_ms)
            if response is None:
                response = self._served(request)
            if not future.done():
                future.set_result(response)

    def _expired(
        self, request: dict[str, Any], waited_ms: float
    ) -> dict[str, Any] | None:
        """The deadline check, strictly before dispatch.

        ``deadline_ms`` bounds *queue wait*: a request that waited
        longer than the caller gave it is refused without touching the
        engine, so a deadline refusal never half-applies.  A deadline
        of <= 0 is "expired on arrival" -- deterministic by
        construction, which is what probes and tests want.
        """
        raw = request.get("deadline_ms")
        if raw is None:
            return None
        deadline_ms = float(raw)
        if deadline_ms > 0.0 and waited_ms <= deadline_ms:
            return None
        self._m_deadline_expired.inc()
        self._m_rejected["deadline_exceeded"].inc()
        return to_response(
            DeadlineExceeded(
                f"deadline of {deadline_ms:g}ms expired after "
                f"{waited_ms:.3f}ms queued on shard {self.shard_index}",
                shard=self.shard_index,
                deadline_ms=deadline_ms,
                waited_ms=round(waited_ms, 3),
            )
        )

    def _served(self, request: dict[str, Any]) -> dict[str, Any]:
        """Idempotency-cache wrapper around :meth:`handle_request`.

        Only *success* responses are cached: a refusal must re-run so
        a retry can succeed once the refusing condition clears.
        """
        key = request.get("idem")
        if key is not None:
            cached = self._idem.get(str(key))
            if cached is not None:
                self._m_idem_hits.inc()
                return dict(cached)
        response = self.handle_request(request)
        if key is not None and response.get("ok", False):
            self._idem[str(key)] = dict(response)
            self._m_idem_stored.inc()
            while len(self._idem) > self.options.idem_capacity:
                self._idem.popitem(last=False)
        return response

    def _resolve(self, request: dict[str, Any]) -> Tenant:
        tenant_id = str(request["tenant"])
        owner = self.router.shard_of(tenant_id)
        if owner != self.shard_index:
            raise ShardUnavailable(
                f"tenant {tenant_id!r} is owned by shard {owner}, "
                f"not shard {self.shard_index}",
                tenant=tenant_id,
                owner_shard=owner,
                this_shard=self.shard_index,
            )
        tenant = self.tenants.get(tenant_id)
        if tenant is None or tenant.state is TenantState.RETIRED:
            raise TenantNotFound(
                f"no active tenant {tenant_id!r} on shard "
                f"{self.shard_index}",
                tenant=tenant_id,
                shard=self.shard_index,
            )
        return tenant

    def _quota(self, tenant: Tenant) -> TenantQuota:
        return self.quotas[tenant.tenant_id]

    # -- operations ---------------------------------------------------------

    def _op_provision(self, request: dict[str, Any]) -> dict[str, Any]:
        if self.draining:
            raise DrainInProgress(
                f"shard {self.shard_index} is draining; "
                "no new tenants accepted",
                shard=self.shard_index,
            )
        spec = TenantSpec(
            tenant_id=str(request["tenant"]),
            preset=str(request.get("preset", "combined")),
            region_kb=int(request.get("region_kb", 64)),
            keystream=str(request.get("keystream", "splitmix")),
            resilience=bool(request.get("resilience", False)),
            spare_blocks=int(request.get("spare_blocks", 4)),
            ce_threshold=int(request.get("ce_threshold", 2)),
            checkpoint_interval=int(request.get("checkpoint_interval", 32)),
            quota=QuotaConfig.from_json(request.get("quota", {})),
        )
        owner = self.router.shard_of(spec.tenant_id)
        if owner != self.shard_index:
            raise ShardUnavailable(
                f"tenant {spec.tenant_id!r} routes to shard {owner}",
                tenant=spec.tenant_id,
                owner_shard=owner,
            )
        if spec.tenant_id in self.tenants or spec.tenant_id in self.retired:
            raise ServiceError(
                f"tenant {spec.tenant_id!r} already exists",
                tenant=spec.tenant_id,
            )
        tenant = Tenant.provision(
            self.root,
            spec,
            self.secret_seed,
            fault_profile=self.options.profile_for(spec.tenant_id),
            degraded_after=self.options.degraded_after,
        )
        self.tenants[spec.tenant_id] = tenant
        self.quotas[spec.tenant_id] = TenantQuota(
            spec.tenant_id, spec.quota, self.clock
        )
        self._refresh_gauges()
        return {
            "tenant": spec.tenant_id,
            "shard": self.shard_index,
            "capacity_bytes": tenant.capacity_bytes,
        }

    def _decode_block(self, text: str) -> bytes:
        data = bytes.fromhex(text)
        if len(data) != BLOCK_BYTES:
            raise ValueError(
                f"block payloads are {BLOCK_BYTES} bytes, got {len(data)}"
            )
        return data

    def _op_write(self, request: dict[str, Any]) -> dict[str, Any]:
        tenant = self._resolve(request)
        quota = self._quota(tenant)
        data = self._decode_block(str(request["data"]))
        quota.admit_ops(1)
        quota.admit_write_bytes(len(data))
        tenant.write(int(request["address"]), data)
        self._m_bytes_written.inc(len(data))
        return {"tenant": tenant.tenant_id, "address": int(request["address"])}

    def _op_batch(self, request: dict[str, Any]) -> dict[str, Any]:
        tenant = self._resolve(request)
        quota = self._quota(tenant)
        writes = [
            (int(address), self._decode_block(str(text)))
            for address, text in request["writes"]
        ]
        if not writes:
            raise ValueError("batch needs at least one write")
        total = sum(len(data) for _, data in writes)
        quota.admit_ops(len(writes))
        quota.admit_write_bytes(total)
        tenant.write_batch(writes)
        self._m_bytes_written.inc(total)
        return {"tenant": tenant.tenant_id, "writes": len(writes)}

    def _op_read(self, request: dict[str, Any]) -> dict[str, Any]:
        tenant = self._resolve(request)
        self._quota(tenant).admit_ops(1)
        result = tenant.read(int(request["address"]))
        data = result.data
        clean = bool(getattr(result, "ok", True)) and data is not None
        self._m_bytes_read.inc(len(data) if data is not None else 0)
        return {
            "tenant": tenant.tenant_id,
            "address": int(request["address"]),
            "data": data.hex() if data is not None else None,
            "clean": clean,
        }

    def _op_stat(self, request: dict[str, Any]) -> dict[str, Any]:
        tenant = self._resolve(request)
        payload = tenant.stat()
        payload["quota"] = self._quota(tenant).state()
        payload["shard"] = self.shard_index
        return payload

    def _op_drain(self, request: dict[str, Any]) -> dict[str, Any]:
        tenant = self._resolve(request)
        outcome = tenant.drain()
        self._m_drained.inc()
        self._refresh_gauges()
        return outcome

    def _op_retire(self, request: dict[str, Any]) -> dict[str, Any]:
        tenant = self._resolve(request)
        outcome = tenant.retire()
        self._refresh_gauges()
        return outcome

    def _op_drain_shard(self, request: dict[str, Any]) -> dict[str, Any]:
        return self.drain_all()

    def _op_ping(self, request: dict[str, Any]) -> dict[str, Any]:
        return {
            "shard": self.shard_index,
            "schema": PROTOCOL_SCHEMA,
            "draining": self.draining,
            "tenants": sorted(self.tenants),
        }

    # -- observability payloads (shared with the HTTP endpoints) -------------

    def metrics(self) -> dict[str, Any]:
        return metrics_payload(self)

    def health(self) -> dict[str, Any]:
        return health_payload(self)

    # -- the serving loop ---------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._m_conn_accepted.inc()
        try:
            while True:
                try:
                    request = await read_frame(reader)
                # repro-lint: disable=RL007
                except (
                    asyncio.CancelledError,
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    json.JSONDecodeError,
                    ValueError,
                ):
                    # CancelledError lands here only at loop teardown
                    # (stop already set); treat it as a hangup.
                    break
                await write_frame(writer, await self.submit(request))
        finally:
            self._m_conn_closed.inc()
            writer.close()
            # CancelledError included: loop teardown must not surface a
            # "exception never retrieved" from a half-closed transport.
            # repro-lint: disable=RL007
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def serve(self, stop: asyncio.Event) -> None:
        """Serve the protocol + HTTP sockets until ``stop`` is set."""
        proto_path = self.router.socket_path(self.shard_index)
        http_path = self.router.http_socket_path(self.shard_index)
        for path in (proto_path, http_path):
            # Startup, before any client can connect: unlinking a stale
            # socket path is sub-millisecond and nothing else runs yet.
            # repro-lint: disable=RL007
            path.unlink(missing_ok=True)
        self._queue = asyncio.Queue()
        dispatcher = asyncio.create_task(self._dispatch_loop())
        server = await asyncio.start_unix_server(
            self._handle_conn, path=str(proto_path)
        )
        http_server = await serve_http(self, str(http_path))
        try:
            await stop.wait()
        finally:
            server.close()
            http_server.close()
            dispatcher.cancel()
            # Reaping our own just-cancelled dispatcher: the
            # CancelledError *is* the expected completion here, and the
            # enclosing coroutine still propagates its own cancellation.
            # repro-lint: disable=RL007
            with contextlib.suppress(asyncio.CancelledError):
                await dispatcher
            self._queue = None
            await server.wait_closed()
            await http_server.wait_closed()
            for path in (proto_path, http_path):
                # Teardown mirror of the startup unlink above.
                # repro-lint: disable=RL007
                path.unlink(missing_ok=True)


def shard_main(
    root: str,
    shard_index: int,
    num_shards: int,
    secret_seed: int,
    options: ShardOptions | None = None,
) -> None:
    """Worker-process entry: recover, serve, drain on SIGTERM."""
    shard = Shard(
        root, shard_index, num_shards, secret_seed, options=options
    )
    shard.recover()

    async def _run() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()

        def _graceful() -> None:
            # Drain first (flush + checkpoint every tenant), then stop:
            # after this, restart recovery is a checkpoint load.
            shard.drain_all()
            stop.set()

        loop.add_signal_handler(signal.SIGTERM, _graceful)
        loop.add_signal_handler(signal.SIGINT, _graceful)
        await shard.serve(stop)

    asyncio.run(_run())


class ServiceSupervisor:
    """Owns the shard worker processes; can kill and restart them."""

    def __init__(
        self,
        root: str | pathlib.Path,
        num_shards: int = 2,
        secret_seed: int = 0xDAC2018,
        registry: MetricRegistry | None = None,
        options: ShardOptions | None = None,
    ) -> None:
        self.router = ShardRouter(root, num_shards)
        self.root = pathlib.Path(root)
        self.num_shards = num_shards
        self.secret_seed = secret_seed
        self.options = options
        self.registry = registry if registry is not None else MetricRegistry()
        self._m_restarts = self.registry.counter("service.shard.restarts")
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._workers: dict[int, Any] = {}

    def _spawn(self, shard: int) -> None:
        process = self._context.Process(
            target=shard_main,
            args=(
                str(self.root),
                shard,
                self.num_shards,
                self.secret_seed,
                self.options,
            ),
            daemon=True,
        )
        process.start()
        self._workers[shard] = process

    def start(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        for shard in self.router.shards():
            self._spawn(shard)

    def alive(self, shard: int) -> bool:
        process = self._workers.get(shard)
        return bool(process is not None and process.is_alive())

    def wait_ready(self, timeout: float = 10.0) -> None:
        """Block until every live shard accepts protocol connections."""
        # Supervisor readiness deadline: host process, real time.
        # repro-lint: disable=RL002
        deadline = time.monotonic() + timeout
        for shard in self.router.shards():
            path = self.router.socket_path(shard)
            while True:
                if _socket_accepts(path):
                    break
                if not self.alive(shard):
                    raise ShardUnavailable(
                        f"shard {shard} died before becoming ready",
                        shard=shard,
                    )
                # repro-lint: disable=RL002
                if time.monotonic() > deadline:
                    raise ShardUnavailable(
                        f"shard {shard} not ready within {timeout}s",
                        shard=shard,
                    )
                time.sleep(0.02)

    def kill_shard(self, shard: int) -> None:
        """SIGKILL a worker: the crash the durability plane exists for."""
        process = self._workers[shard]
        if process.is_alive():
            os.kill(process.pid, signal.SIGKILL)
        process.join(timeout=5.0)

    def restart_shard(self, shard: int, timeout: float = 10.0) -> None:
        """Start a replacement worker and wait for it to recover."""
        process = self._workers.get(shard)
        if process is not None and process.is_alive():
            raise ValueError(f"shard {shard} is still running")
        self._m_restarts.inc()
        self._spawn(shard)
        # Restart deadline: host process, real time.
        # repro-lint: disable=RL002
        deadline = time.monotonic() + timeout
        path = self.router.socket_path(shard)
        while not _socket_accepts(path):
            # repro-lint: disable=RL002
            if time.monotonic() > deadline:
                raise ShardUnavailable(
                    f"restarted shard {shard} not ready within {timeout}s",
                    shard=shard,
                )
            time.sleep(0.02)

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: SIGTERM (drain) every worker, then join."""
        for process in self._workers.values():
            if process.is_alive():
                process.terminate()
        for process in self._workers.values():
            process.join(timeout=timeout)
            if process.is_alive():
                process.kill()
                process.join(timeout=timeout)
        self._workers.clear()


def _socket_accepts(path: pathlib.Path) -> bool:
    import socket

    if not path.exists():
        return False
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        probe.settimeout(0.2)
        probe.connect(str(path))
        return True
    except OSError:
        return False
    finally:
        probe.close()


#: refusals worth a client-side retry: the shard either never saw the
#: request (transport failure, breaker open) or refused it strictly
#: before dispatch (shed, deadline) -- re-sending cannot double-apply.
RETRYABLE_ERRORS = (ShardUnavailable, Overloaded, DeadlineExceeded)

#: ops whose requests get an auto-attached idempotency key
_MUTATING_OPS = frozenset({"provision", "write", "batch"})


class ServiceClient:
    """Async client: routes each request to the owning shard itself.

    Resilience plumbing, per shard: a :class:`CircuitBreaker` trips
    open after consecutive transport failures so retries fail fast
    instead of piling onto a dead socket, and :meth:`request_retry`
    sleeps exponential-backoff-with-full-jitter between attempts
    (seeded ``random.Random``: schedules are reproducible per client,
    decorrelated across clients).  Mutating requests sent through
    :meth:`request_retry` carry an auto-attached idempotency key, so a
    retry that lands after an ambiguous failure returns the cached
    success instead of double-applying.
    """

    def __init__(
        self,
        root: str | pathlib.Path,
        num_shards: int,
        *,
        registry: MetricRegistry | None = None,
        backoff: BackoffPolicy | None = None,
        breaker: BreakerConfig | None = None,
        rng_seed: int = 0,
    ) -> None:
        self.router = ShardRouter(root, num_shards)
        self.registry = registry if registry is not None else MetricRegistry()
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.breaker_config = (
            breaker if breaker is not None else BreakerConfig()
        )
        self._rng = random.Random(rng_seed)
        self._conns: dict[
            int, tuple[asyncio.StreamReader, asyncio.StreamWriter]
        ] = {}
        self._breakers: dict[int, CircuitBreaker] = {}
        self._idem_prefix = f"{os.getpid():x}.{id(self):x}"
        self._idem_next = 0
        reg = self.registry
        self._m_sends = reg.counter("service.client.sends")
        self._m_retries = reg.counter("service.client.retries")
        self._m_fast_fail = reg.counter("service.breaker.fast_fail")
        self._m_transitions = {
            "open": reg.counter("service.breaker.opened"),
            "half_open": reg.counter("service.breaker.half_open"),
            "closed": reg.counter("service.breaker.closed"),
        }

    def _breaker(self, shard: int) -> CircuitBreaker:
        breaker = self._breakers.get(shard)
        if breaker is None:
            breaker = CircuitBreaker(
                self.breaker_config,
                on_transition=lambda _old, new: (
                    self._m_transitions[new].inc()
                ),
            )
            self._breakers[shard] = breaker
        return breaker

    def breaker_states(self) -> dict[int, str]:
        """Current circuit state per shard (for reports and tests)."""
        return {
            shard: breaker.state
            for shard, breaker in sorted(self._breakers.items())
        }

    async def _conn(
        self, shard: int
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        cached = self._conns.get(shard)
        if cached is not None:
            return cached
        path = self.router.socket_path(shard)
        try:
            reader, writer = await asyncio.open_unix_connection(str(path))
        except (ConnectionError, FileNotFoundError, OSError) as error:
            raise ShardUnavailable(
                f"shard {shard} is not answering {path}: {error}",
                shard=shard,
            ) from error
        self._conns[shard] = (reader, writer)
        return reader, writer

    def _drop(self, shard: int) -> None:
        cached = self._conns.pop(shard, None)
        if cached is not None:
            cached[1].close()

    async def request(
        self, payload: dict[str, Any], shard: int | None = None
    ) -> dict[str, Any]:
        """Send one request; raises the typed error on a refusal.

        The shard's circuit breaker gates the send: while open, the
        call fails fast with :class:`ShardUnavailable` without touching
        the socket.  A *typed* refusal counts as breaker success (the
        shard answered; the circuit is healthy) -- only transport
        failures trip it.
        """
        if shard is None:
            shard = self.router.shard_of(str(payload["tenant"]))
        breaker = self._breaker(shard)
        if not breaker.allow():
            self._m_fast_fail.inc()
            raise ShardUnavailable(
                f"shard {shard} circuit is {breaker.state}; failing fast",
                shard=shard,
                breaker=breaker.state,
            )
        try:
            reader, writer = await self._conn(shard)
            self._m_sends.inc()
            await write_frame(writer, payload)
            response = await read_frame(reader)
        except ShardUnavailable:
            breaker.record_failure()
            raise
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            OSError,
        ) as error:
            self._drop(shard)
            breaker.record_failure()
            raise ShardUnavailable(
                f"shard {shard} connection failed mid-request: {error}",
                shard=shard,
            ) from error
        breaker.record_success()
        if not response.get("ok", False):
            raise from_response(response)
        return response

    def _attach_idem(self, payload: dict[str, Any]) -> dict[str, Any]:
        """A copy of ``payload`` with an idempotency key on mutators."""
        if payload.get("op") not in _MUTATING_OPS or "idem" in payload:
            return payload
        self._idem_next += 1
        return {
            **payload,
            "idem": f"{self._idem_prefix}.{self._idem_next}",
        }

    async def request_retry(
        self,
        payload: dict[str, Any],
        shard: int | None = None,
        deadline: float = 10.0,
    ) -> dict[str, Any]:
        """Retry retryable refusals until ``deadline`` seconds.

        Retries :data:`RETRYABLE_ERRORS` only -- refusals the shard
        issued strictly before dispatch, or transport failures.  The
        ambiguous-transport case is additionally covered twice over:
        writes re-apply the same (address, data) pair (convergent), and
        the auto-attached idempotency key makes the response itself
        exactly-once.  Sleeps use full-jitter exponential backoff, so
        concurrent clients hammering a restarting shard decorrelate
        instead of retrying in lockstep.
        """
        payload = self._attach_idem(payload)
        # Retry deadline against a real restarting process.
        # repro-lint: disable=RL002
        stop_at = time.monotonic() + deadline
        attempt = 0
        while True:
            try:
                return await self.request(payload, shard=shard)
            except RETRYABLE_ERRORS:
                # repro-lint: disable=RL002
                if time.monotonic() > stop_at:
                    raise
                self._m_retries.inc()
                await asyncio.sleep(self.backoff.delay(attempt, self._rng))
                attempt += 1

    # -- convenience ops ---------------------------------------------------

    async def provision(self, tenant: str, **fields: Any) -> dict[str, Any]:
        return await self.request(
            {"op": "provision", "tenant": tenant, **fields}
        )

    async def write(
        self, tenant: str, address: int, data: bytes
    ) -> dict[str, Any]:
        return await self.request(
            {
                "op": "write",
                "tenant": tenant,
                "address": address,
                "data": data.hex(),
            }
        )

    async def batch(
        self, tenant: str, writes: list[tuple[int, bytes]]
    ) -> dict[str, Any]:
        return await self.request(
            {
                "op": "batch",
                "tenant": tenant,
                "writes": [[address, data.hex()] for address, data in writes],
            }
        )

    async def read(self, tenant: str, address: int) -> bytes | None:
        response = await self.request(
            {"op": "read", "tenant": tenant, "address": address}
        )
        data = response.get("data")
        return bytes.fromhex(data) if data is not None else None

    async def stat(self, tenant: str) -> dict[str, Any]:
        return await self.request({"op": "stat", "tenant": tenant})

    async def drain(self, tenant: str) -> dict[str, Any]:
        return await self.request({"op": "drain", "tenant": tenant})

    async def retire(self, tenant: str) -> dict[str, Any]:
        return await self.request({"op": "retire", "tenant": tenant})

    async def ping(self, shard: int) -> dict[str, Any]:
        return await self.request({"op": "ping", "tenant": ""}, shard=shard)

    async def drain_shard(self, shard: int) -> dict[str, Any]:
        return await self.request(
            {"op": "drain_shard", "tenant": ""}, shard=shard
        )

    async def close(self) -> None:
        for shard in list(self._conns):
            self._drop(shard)


__all__ = [
    "MAX_FRAME_BYTES",
    "OPS",
    "PROTOCOL_SCHEMA",
    "REJECTION_CODES",
    "RETRYABLE_ERRORS",
    "ServiceClient",
    "ServiceSupervisor",
    "Shard",
    "ShardOptions",
    "encode_frame",
    "read_frame",
    "shard_main",
    "write_frame",
]
