"""HTTP observability endpoints: ``/metrics`` and ``/health``.

Each shard worker serves a tiny HTTP/1.0 responder on its own unix
socket (``shard-N.http.sock``) next to the request-protocol socket, so
scrapers never contend with the data path's framing:

* ``GET /metrics`` -- the shard registry's totals merged with every
  tenant registry's totals (tenant metric names are prefixed
  ``tenant.<id>.``), using the same deterministic merge discipline as
  the parallel bench runner (:func:`repro.harness.parallel.merge_totals`);
* ``GET /health`` -- shard status plus each tenant's
  :meth:`~repro.service.tenant.Tenant.health` contribution.  The shard
  is ``ok`` only when every tenant is; one degraded tenant marks the
  shard ``degraded`` without hiding which tenant it was.

The synchronous :func:`scrape` helper is what tests, the CI smoke job,
and ``repro loadgen`` use to pull these payloads.
"""

from __future__ import annotations

import json
import socket
from typing import TYPE_CHECKING, Any

from repro.harness.parallel import merge_totals

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.service.server import Shard

ENDPOINTS_SCHEMA = "repro.service.endpoints/1"


def metrics_payload(shard: "Shard") -> dict[str, Any]:
    """The shard's merged metric totals, deterministically keyed."""
    parts: list[dict[str, int]] = [shard.registry.snapshot().totals()]
    for tenant_id in sorted(shard.tenants):
        tenant = shard.tenants[tenant_id]
        totals = tenant.registry.snapshot().totals()
        parts.append(
            {f"tenant.{tenant_id}.{name}": value
             for name, value in totals.items()}
        )
    return {
        "schema": ENDPOINTS_SCHEMA,
        "shard": shard.shard_index,
        "num_shards": shard.router.num_shards,
        "metrics": merge_totals(parts),
    }


def health_payload(shard: "Shard") -> dict[str, Any]:
    """Shard + per-tenant health; worst tenant status wins."""
    tenants = {
        tenant_id: shard.tenants[tenant_id].health()
        for tenant_id in sorted(shard.tenants)
    }
    status = "draining" if shard.draining else "ok"
    if status == "ok":
        ranked = {"ok": 0, "draining": 1, "retired": 1, "at_risk": 2,
                  "degraded": 3}
        worst = max(
            (entry["status"] for entry in tenants.values()),
            key=lambda s: ranked.get(s, 0),
            default="ok",
        )
        if ranked.get(worst, 0) >= 2:
            status = worst
    return {
        "schema": ENDPOINTS_SCHEMA,
        "shard": shard.shard_index,
        "status": status,
        "draining": shard.draining,
        "tenants": tenants,
        "recovery": shard.recovery_summary,
    }


def _http_response(status: str, payload: dict[str, Any]) -> bytes:
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
    head = (
        f"HTTP/1.0 {status}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode()
    return head + body


async def serve_http(shard: "Shard", path: str):
    """Start the shard's /metrics + /health unix-socket HTTP server."""
    import asyncio

    async def _handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            # Drain the (ignored) header block up to the blank line.
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            target = parts[1] if len(parts) >= 2 else ""
            if target == "/metrics":
                response = _http_response("200 OK", metrics_payload(shard))
            elif target == "/health":
                response = _http_response("200 OK", health_payload(shard))
            else:
                response = _http_response(
                    "404 Not Found",
                    {"error": f"unknown path {target!r}",
                     "paths": ["/metrics", "/health"]},
                )
            writer.write(response)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    return await asyncio.start_unix_server(_handle, path=path)


def scrape(path: str, target: str = "/metrics", timeout: float = 5.0
           ) -> dict[str, Any]:
    """Synchronously GET ``target`` from a shard's HTTP unix socket."""
    if target not in ("/metrics", "/health"):
        raise ValueError(f"unknown scrape target {target!r}")
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        conn.settimeout(timeout)
        conn.connect(path)
        conn.sendall(
            f"GET {target} HTTP/1.0\r\nHost: shard\r\n\r\n".encode()
        )
        chunks = []
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    finally:
        conn.close()
    raw = b"".join(chunks)
    header, _, body = raw.partition(b"\r\n\r\n")
    status_line = header.split(b"\r\n", 1)[0].decode("latin-1")
    if " 200 " not in f"{status_line} ":
        raise ValueError(f"scrape of {target} failed: {status_line}")
    payload = json.loads(body.decode())
    if not isinstance(payload, dict):
        raise ValueError("scrape payload must be a JSON object")
    return payload


__all__ = [
    "ENDPOINTS_SCHEMA",
    "health_payload",
    "metrics_payload",
    "scrape",
    "serve_http",
]
