"""Mixed-tenant load generator, chaos kill, and the service benchmark.

``repro loadgen`` self-hosts a :class:`ServiceSupervisor`, provisions N
tenants across the shards, and drives concurrent per-tenant traffic
(single writes, group-commit batches, and verifying reads) while
keeping a **shadow copy** of every acknowledged write.  The shadow is
the ground truth: at the end, every shadowed block is read back through
the service and compared byte-for-byte -- any mismatch is silent data
corruption and fails the run.

Chaos mode (``kill_shard``) SIGKILLs one worker mid-run and restarts
it.  In-flight requests surface :class:`ShardUnavailable`; the
generator retries them idempotently (same (address, data) pair) until
the restarted worker has replayed its journals, and only then records
the write in the shadow.  An op's latency includes any such retry
stall, so the reported p99 is the *user-visible* tail under a crash,
not a fair-weather number.

Latency and throughput are wall-clock and therefore machine-dependent;
the correctness fields (``sdc_blocks``, ``verified_blocks``,
``all_verified``) are not.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import pathlib
import random
import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs.metrics import MetricRegistry
from repro.service.endpoints import scrape
from repro.service.errors import QuotaExceeded, ShardUnavailable
from repro.service.quota import QuotaConfig
from repro.service.router import shard_of
from repro.service.server import ServiceClient, ServiceSupervisor
from repro.service.tenant import BLOCK_BYTES

BENCH_SCHEMA = "repro.service.bench/1"


@dataclass(frozen=True)
class LoadgenSpec:
    """One load-generation campaign, fully determined by its fields."""

    tenants: int = 4
    shards: int = 2
    ops_per_tenant: int = 200
    batch_every: int = 8
    batch_size: int = 4
    read_every: int = 5
    region_kb: int = 16
    preset: str = "combined"
    keystream: str = "splitmix"
    seed: int = 1
    secret_seed: int = 0xDAC2018
    quota: QuotaConfig = field(default_factory=QuotaConfig)
    #: chaos: SIGKILL this shard once mid-run, then restart it
    kill_shard: int | None = None
    kill_after_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.tenants < 1 or self.shards < 1:
            raise ValueError("tenants and shards must be >= 1")
        if self.ops_per_tenant < 1:
            raise ValueError("ops_per_tenant must be >= 1")
        if self.kill_shard is not None and not (
            0 <= self.kill_shard < self.shards
        ):
            raise ValueError("kill_shard out of range")

    def tenant_ids(self) -> list[str]:
        return [f"tenant-{index:02d}" for index in range(self.tenants)]

    def config_dict(self) -> dict[str, Any]:
        return {
            "tenants": self.tenants,
            "shards": self.shards,
            "ops_per_tenant": self.ops_per_tenant,
            "batch_every": self.batch_every,
            "batch_size": self.batch_size,
            "read_every": self.read_every,
            "region_kb": self.region_kb,
            "preset": self.preset,
            "keystream": self.keystream,
            "seed": self.seed,
            "kill_shard": self.kill_shard,
            "kill_after_fraction": self.kill_after_fraction,
        }


def _block_payload(tenant_id: str, seed: int, address: int,
                   sequence: int) -> bytes:
    return hashlib.sha512(
        f"repro.loadgen/{tenant_id}/{seed}/{address}/{sequence}".encode()
    ).digest()[:BLOCK_BYTES]


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of ``samples``, in ms."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


class _TenantTraffic:
    """One tenant's traffic loop + shadow ground truth."""

    def __init__(self, tenant_id: str, spec: LoadgenSpec,
                 root: pathlib.Path,
                 client_registry: MetricRegistry | None = None) -> None:
        self.tenant_id = tenant_id
        self.spec = spec
        self.client = ServiceClient(
            root,
            spec.shards,
            registry=client_registry,
            rng_seed=int.from_bytes(
                hashlib.sha256(
                    f"repro.loadgen.client/{spec.seed}/{tenant_id}".encode()
                ).digest()[:8],
                "big",
            ),
        )
        self.rng = random.Random(
            f"repro.loadgen/{spec.seed}/{tenant_id}"
        )
        self.shadow: dict[int, bytes] = {}
        self.latencies_ms: list[float] = []
        self.acked_ops = 0
        self.retried_ops = 0
        self.quota_rejections = 0
        self.inline_mismatches = 0
        self.capacity_bytes = 0

    async def provision(self) -> None:
        response = await self.client.request_retry({
            "op": "provision",
            "tenant": self.tenant_id,
            "preset": self.spec.preset,
            "region_kb": self.spec.region_kb,
            "keystream": self.spec.keystream,
            "quota": self.spec.quota.to_json(),
        })
        self.capacity_bytes = int(response["capacity_bytes"])

    def _pick_address(self) -> int:
        blocks = self.capacity_bytes // BLOCK_BYTES
        return self.rng.randrange(blocks) * BLOCK_BYTES

    async def _timed(self, payload: dict[str, Any]) -> dict[str, Any]:
        # Measuring real request latency is this coroutine's job.
        # repro-lint: disable=RL002
        start = time.monotonic()
        try:
            response = await self.client.request(payload)
        except QuotaExceeded:
            self.quota_rejections += 1
            raise
        except ShardUnavailable:
            # Ambiguous failure (killed shard mid-request): retry the
            # identical payload until the replacement worker answers.
            self.retried_ops += 1
            response = await self.client.request_retry(
                payload, deadline=30.0
            )
        # repro-lint: disable=RL002
        self.latencies_ms.append((time.monotonic() - start) * 1000.0)
        return response

    async def run(self) -> None:
        for sequence in range(self.spec.ops_per_tenant):
            try:
                await self._one_op(sequence)
            except QuotaExceeded:
                # A quota refusal is the service working as designed:
                # count it (in _timed) and move to the next op.
                continue

    async def _one_op(self, sequence: int) -> None:
        spec = self.spec
        if spec.read_every and sequence % spec.read_every == 2 \
                and self.shadow:
            address = self.rng.choice(sorted(self.shadow))
            response = await self._timed({
                "op": "read",
                "tenant": self.tenant_id,
                "address": address,
            })
            data = response.get("data")
            seen = bytes.fromhex(data) if data else b""
            if seen != self.shadow[address]:
                self.inline_mismatches += 1
            self.acked_ops += 1
        elif spec.batch_every and sequence % spec.batch_every == 1:
            writes = []
            for offset in range(spec.batch_size):
                address = self._pick_address()
                writes.append((address, _block_payload(
                    self.tenant_id, spec.seed, address,
                    sequence * 1000 + offset,
                )))
            await self._timed({
                "op": "batch",
                "tenant": self.tenant_id,
                "writes": [[a, d.hex()] for a, d in writes],
            })
            for address, data in writes:
                self.shadow[address] = data
            self.acked_ops += len(writes)
        else:
            address = self._pick_address()
            data = _block_payload(
                self.tenant_id, spec.seed, address, sequence
            )
            await self._timed({
                "op": "write",
                "tenant": self.tenant_id,
                "address": address,
                "data": data.hex(),
            })
            self.shadow[address] = data
            self.acked_ops += 1

    async def verify(self) -> tuple[int, int]:
        """Read every shadowed block back; returns (verified, sdc).

        Verification reads pay the same op quota as traffic, so a
        rate-limited tenant's sweep politely waits for bucket refills.
        """
        verified = sdc = 0
        for address in sorted(self.shadow):
            while True:
                try:
                    data = await self.client.read(self.tenant_id, address)
                    break
                except QuotaExceeded:
                    await asyncio.sleep(0.05)
            if data == self.shadow[address]:
                verified += 1
            else:
                sdc += 1
        return verified, sdc

    async def close(self) -> None:
        await self.client.close()


async def _drive(spec: LoadgenSpec, root: pathlib.Path,
                 supervisor: ServiceSupervisor) -> dict[str, Any]:
    client_registry = MetricRegistry()
    traffic = [
        _TenantTraffic(tenant_id, spec, root, client_registry)
        for tenant_id in spec.tenant_ids()
    ]
    for tenant in traffic:
        await tenant.provision()

    kill_events: list[dict[str, Any]] = []

    async def _chaos() -> None:
        if spec.kill_shard is None:
            return
        total = spec.ops_per_tenant * spec.tenants
        target = int(total * spec.kill_after_fraction)
        while sum(t.acked_ops for t in traffic) < target:
            await asyncio.sleep(0.01)
        await asyncio.to_thread(supervisor.kill_shard, spec.kill_shard)
        kill_events.append({"shard": spec.kill_shard, "action": "kill"})
        await asyncio.to_thread(supervisor.restart_shard, spec.kill_shard)
        kill_events.append({"shard": spec.kill_shard, "action": "restart"})

    # Campaign wallclock (throughput denominator), not simulated time.
    # repro-lint: disable=RL002
    start = time.monotonic()
    await asyncio.gather(_chaos(), *(tenant.run() for tenant in traffic))
    # repro-lint: disable=RL002
    elapsed = time.monotonic() - start

    verified = sdc = 0
    for tenant in traffic:
        tenant_verified, tenant_sdc = await tenant.verify()
        verified += tenant_verified
        sdc += tenant_sdc

    all_latencies = [
        sample for tenant in traffic for sample in tenant.latencies_ms
    ]
    total_ops = sum(tenant.acked_ops for tenant in traffic)
    tenants_out = {
        tenant.tenant_id: {
            "shard": shard_of(tenant.tenant_id, spec.shards),
            "acked_ops": tenant.acked_ops,
            "retried_ops": tenant.retried_ops,
            "quota_rejections": tenant.quota_rejections,
            "shadow_blocks": len(tenant.shadow),
            "inline_mismatches": tenant.inline_mismatches,
            "p50_ms": round(percentile(tenant.latencies_ms, 50), 3),
            "p99_ms": round(percentile(tenant.latencies_ms, 99), 3),
        }
        for tenant in traffic
    }
    for tenant in traffic:
        await tenant.close()
    client_totals = client_registry.snapshot().totals()
    return {
        "client": {
            "sends": client_totals.get("service.client.sends", 0),
            "retries": client_totals.get("service.client.retries", 0),
            "breaker_opened": client_totals.get(
                "service.breaker.opened", 0
            ),
        },
        "elapsed_s": round(elapsed, 3),
        "throughput_ops_s": round(total_ops / elapsed, 1) if elapsed else 0.0,
        "acked_ops": total_ops,
        "p50_ms": round(percentile(all_latencies, 50), 3),
        "p99_ms": round(percentile(all_latencies, 99), 3),
        "verified_blocks": verified,
        "sdc_blocks": sdc,
        "inline_mismatches": sum(t.inline_mismatches for t in traffic),
        "kill_events": kill_events,
        "tenants": tenants_out,
    }


def run_loadgen(spec: LoadgenSpec, root: str | pathlib.Path,
                out_path: str | pathlib.Path | None = None
                ) -> dict[str, Any]:
    """Run one campaign end to end; returns the benchmark payload."""
    root = pathlib.Path(root)
    supervisor = ServiceSupervisor(
        root, num_shards=spec.shards, secret_seed=spec.secret_seed
    )
    supervisor.start()
    try:
        supervisor.wait_ready()
        results = asyncio.run(_drive(spec, root, supervisor))
        scrapes = {}
        for shard in range(spec.shards):
            http = str(supervisor.router.http_socket_path(shard))
            scrapes[f"shard-{shard}"] = {
                "health": scrape(http, "/health"),
            }
    finally:
        supervisor.stop()

    payload = {
        "schema": BENCH_SCHEMA,
        "bench": "service",
        "config": spec.config_dict(),
        "results": results,
        "health": {
            name: entry["health"].get("status")
            for name, entry in sorted(scrapes.items())
        },
        "all_verified": results["sdc_blocks"] == 0
        and results["inline_mismatches"] == 0,
    }
    if out_path is not None:
        pathlib.Path(out_path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    return payload


__all__ = [
    "BENCH_SCHEMA",
    "LoadgenSpec",
    "percentile",
    "run_loadgen",
]
