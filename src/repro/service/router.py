"""Deterministic tenant -> shard routing.

Routing must be a pure function of ``(tenant_id, num_shards)``: the
client computes it without asking anyone, a restarted worker re-derives
the same ownership from the tenant directories on disk, and two
processes can never disagree about who owns a tenant.  The hash is
SHA-256 (not Python's salted ``hash``) so the mapping is stable across
processes, interpreter versions and restarts.
"""

from __future__ import annotations

import hashlib
import pathlib


def shard_of(tenant_id: str, num_shards: int) -> int:
    """The shard index that owns ``tenant_id``."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    digest = hashlib.sha256(
        f"repro.service.router/{tenant_id}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


class ShardRouter:
    """The service's address book: shard indexes and their sockets."""

    def __init__(self, root: str | pathlib.Path, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.root = pathlib.Path(root)
        self.num_shards = num_shards

    def shard_of(self, tenant_id: str) -> int:
        return shard_of(tenant_id, self.num_shards)

    def socket_path(self, shard: int) -> pathlib.Path:
        """The shard's request-protocol unix socket."""
        self._check(shard)
        return self.root / f"shard-{shard}.sock"

    def http_socket_path(self, shard: int) -> pathlib.Path:
        """The shard's /metrics + /health HTTP unix socket."""
        self._check(shard)
        return self.root / f"shard-{shard}.http.sock"

    def socket_for(self, tenant_id: str) -> pathlib.Path:
        return self.socket_path(self.shard_of(tenant_id))

    def shards(self) -> range:
        return range(self.num_shards)

    def _check(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard {shard} out of range (num_shards={self.num_shards})"
            )


__all__ = ["ShardRouter", "shard_of"]
