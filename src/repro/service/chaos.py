"""``repro chaos``: disk faults x shard kills x overload, one campaign.

Extends the loadgen shadow-verification harness (``repro loadgen``)
with the full fault surface this service claims to survive:

* **disk faults** -- every tenant's :class:`~repro.faultfs.FaultFS`
  runs a seeded background :class:`~repro.faultfs.FaultProfile`, and
  one *victim* tenant (routed to a never-killed shard, so its
  in-memory degraded state survives the campaign) gets a boosted rate
  that drives it into degraded read-only mode;
* **shard kills** -- one worker is SIGKILLed mid-run and restarted,
  exercising the client circuit breaker (open -> fast-fail ->
  half-open probe -> closed) and journal replay;
* **induced overload** -- a burst of raw concurrent connections
  overflows the bounded dispatch queue, proving requests shed with a
  typed ``Overloaded`` refusal instead of queuing without bound;
* **deadline probes** -- requests carrying ``deadline_ms = 0`` must
  come back ``DeadlineExceeded``, deterministically, without touching
  any engine.

Correctness contract: **zero silent data corruption, bounded
staleness**.  Every *acknowledged* write must read back exactly.  A
*refused* mutation is allowed to leave the address at either the last
acknowledged value or the attempted one -- a storage fault between the
in-memory apply and the journal seal is genuinely ambiguous one level
up -- so the shadow tracks a candidate *set* for such addresses and
verification accepts either member, never a third value.  Every
refusal must be typed: an ``internal`` error code anywhere fails the
campaign.

The committed ``BENCH_chaos.json`` additionally carries a
*retry-amplification* measurement (total client frame sends over
logical operations); ``scripts/chaos_gate.py`` enforces the <= 3x
floor so a regression to hot-loop retrying cannot land silently.
"""

from __future__ import annotations

import asyncio
import collections
import hashlib
import json
import pathlib
import random
import time
from dataclasses import dataclass, field
from typing import Any

from repro.faultfs import FaultProfile
from repro.obs.metrics import MetricRegistry
from repro.service.breaker import BreakerConfig
from repro.service.endpoints import scrape
from repro.service.errors import (
    QuotaExceeded,
    ServiceError,
    StorageFaulted,
    TenantDegraded,
)
from repro.service.loadgen import _block_payload, percentile
from repro.service.quota import QuotaConfig
from repro.service.router import ShardRouter, shard_of
from repro.service.server import (
    RETRYABLE_ERRORS,
    ServiceClient,
    ServiceSupervisor,
    ShardOptions,
    encode_frame,
    read_frame,
)
from repro.service.tenant import BLOCK_BYTES

CHAOS_SCHEMA = "repro.service.chaos/1"


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos campaign, fully determined by its fields."""

    tenants: int = 4
    shards: int = 2
    ops_per_tenant: int = 120
    batch_every: int = 8
    batch_size: int = 4
    read_every: int = 5
    region_kb: int = 16
    preset: str = "combined"
    seed: int = 1
    secret_seed: int = 0xDAC2018
    #: background disk-fault rate every tenant runs under
    fault_rate: float = 0.002
    #: boosted rate for the degraded-mode victim tenant
    boost_rate: float = 0.35
    #: fs steps exempt from injection (covers provisioning + recovery
    #: warm-up after a restart)
    warmup_steps: int = 24
    degraded_after: int = 4
    max_queue_depth: int = 8
    #: SIGKILL this shard once mid-run, then restart it
    kill_shard: int = 1
    kill_after_fraction: float = 0.4
    #: concurrent raw connections fired at one shard to overflow the
    #: dispatch queue
    overload_probes: int = 32
    #: requests sent with ``deadline_ms = 0`` (expired on arrival)
    deadline_probes: int = 8
    #: tight op quota for one tenant, so QuotaExceeded shows up typed
    quota: QuotaConfig = field(
        default_factory=lambda: QuotaConfig(rate_ops=400.0, burst_ops=24)
    )

    def __post_init__(self) -> None:
        if self.tenants < 2 or self.shards < 2:
            raise ValueError(
                "chaos needs >= 2 tenants and >= 2 shards (one shard "
                "is killed; the victim tenant must live elsewhere)"
            )
        if not 0 <= self.kill_shard < self.shards:
            raise ValueError("kill_shard out of range")
        if not 0.0 <= self.fault_rate < 1.0 or not 0.0 <= self.boost_rate < 1.0:
            raise ValueError("fault rates must be in [0, 1)")

    def tenant_ids(self) -> list[str]:
        return [f"tenant-{index:02d}" for index in range(self.tenants)]

    def victim_tenant(self) -> str:
        """The boosted tenant: first one routed off the killed shard."""
        for tenant_id in self.tenant_ids():
            if shard_of(tenant_id, self.shards) != self.kill_shard:
                return tenant_id
        raise ValueError("no tenant routes off the killed shard")

    def quota_tenant(self) -> str:
        """The rate-limited tenant (distinct from the victim)."""
        victim = self.victim_tenant()
        for tenant_id in reversed(self.tenant_ids()):
            if tenant_id != victim:
                return tenant_id
        raise AssertionError("unreachable: >= 2 tenants")

    def safe_shard(self) -> int:
        """A shard that is never killed (overload/deadline target)."""
        return 0 if self.kill_shard != 0 else 1

    def shard_options(self) -> ShardOptions:
        return ShardOptions(
            max_queue_depth=self.max_queue_depth,
            degraded_after=self.degraded_after,
            fault_profile=FaultProfile(
                seed=self.seed,
                rate=self.fault_rate,
                warmup_steps=self.warmup_steps,
            ),
            fault_boost_tenant=self.victim_tenant(),
            fault_boost_profile=FaultProfile(
                seed=self.seed,
                rate=self.boost_rate,
                warmup_steps=self.warmup_steps,
            ),
        )

    def config_dict(self) -> dict[str, Any]:
        return {
            "tenants": self.tenants,
            "shards": self.shards,
            "ops_per_tenant": self.ops_per_tenant,
            "seed": self.seed,
            "fault_rate": self.fault_rate,
            "boost_rate": self.boost_rate,
            "warmup_steps": self.warmup_steps,
            "degraded_after": self.degraded_after,
            "max_queue_depth": self.max_queue_depth,
            "kill_shard": self.kill_shard,
            "kill_after_fraction": self.kill_after_fraction,
            "overload_probes": self.overload_probes,
            "deadline_probes": self.deadline_probes,
            "victim_tenant": self.victim_tenant(),
            "quota_tenant": self.quota_tenant(),
        }


class _ChaosTraffic:
    """One tenant's traffic loop with ambiguity-aware ground truth.

    ``shadow`` holds the last *acknowledged* value per address.
    ``ambiguous`` holds, for addresses whose latest mutation was
    refused after possibly reaching the engine, the set of values a
    read may legally return: the last acked value (or None for
    never-acked) plus the attempted one.  Bounded staleness, no
    fabricated ground truth.
    """

    def __init__(
        self,
        tenant_id: str,
        spec: ChaosSpec,
        root: pathlib.Path,
        client_registry: MetricRegistry,
    ) -> None:
        self.tenant_id = tenant_id
        self.spec = spec
        self.client = ServiceClient(
            root,
            spec.shards,
            registry=client_registry,
            breaker=BreakerConfig(failure_threshold=3, cooldown=0.1),
            rng_seed=int.from_bytes(
                hashlib.sha256(
                    f"repro.chaos.client/{spec.seed}/{tenant_id}".encode()
                ).digest()[:8],
                "big",
            ),
        )
        self.rng = random.Random(f"repro.chaos/{spec.seed}/{tenant_id}")
        self.shadow: dict[int, bytes] = {}
        self.ambiguous: dict[int, set[bytes | None]] = {}
        self.refusals: collections.Counter[str] = collections.Counter()
        self.logical_ops = 0
        self.acked_ops = 0
        self.inline_mismatches = 0
        self.inline_ambiguous = 0
        self.latencies_ms: list[float] = []
        self.capacity_bytes = 0

    async def provision(self) -> None:
        self.logical_ops += 1
        quota = (
            self.spec.quota
            if self.tenant_id == self.spec.quota_tenant()
            else QuotaConfig()
        )
        response = await self.client.request_retry({
            "op": "provision",
            "tenant": self.tenant_id,
            "preset": self.spec.preset,
            "region_kb": self.spec.region_kb,
            "resilience": True,
            "quota": quota.to_json(),
        })
        self.capacity_bytes = int(response["capacity_bytes"])

    def _pick_address(self) -> int:
        blocks = self.capacity_bytes // BLOCK_BYTES
        return self.rng.randrange(blocks) * BLOCK_BYTES

    def _acceptable(self, address: int) -> set[bytes | None]:
        candidates = self.ambiguous.get(address)
        if candidates is not None:
            return candidates
        return {self.shadow.get(address)}

    def _mark_ambiguous(
        self, writes: list[tuple[int, bytes]]
    ) -> None:
        """A refused mutation leaves each address two-valued."""
        for address, attempted in writes:
            candidates = self.ambiguous.setdefault(
                address, {self.shadow.get(address)}
            )
            candidates.add(attempted)

    def _ack(self, writes: list[tuple[int, bytes]]) -> None:
        for address, data in writes:
            self.shadow[address] = data
            self.ambiguous.pop(address, None)

    async def _mutate(
        self, payload: dict[str, Any], writes: list[tuple[int, bytes]]
    ) -> None:
        """One mutating request; classifies every refusal by type."""
        # Per-op latency includes retry stalls: the user-visible tail.
        # repro-lint: disable=RL002
        start = time.monotonic()
        try:
            await self.client.request_retry(payload, deadline=30.0)
        except (QuotaExceeded, TenantDegraded) as error:
            # Refused strictly before dispatch: nothing reached the
            # engine, the last acked value still stands.
            self.refusals[error.code] += 1
        except StorageFaulted as error:
            # The backing store refused mid-mutation: not acked, but
            # possibly applied in engine memory.  Two-valued from here
            # until a later ack pins it.
            self.refusals[error.code] += 1
            self._mark_ambiguous(writes)
        except RETRYABLE_ERRORS as error:
            # Retry budget exhausted: the last attempt is ambiguous.
            self.refusals[error.code] += 1
            self._mark_ambiguous(writes)
        except ServiceError as error:
            self.refusals[error.code] += 1
        else:
            self._ack(writes)
            self.acked_ops += 1
        finally:
            # repro-lint: disable=RL002
            self.latencies_ms.append((time.monotonic() - start) * 1000.0)

    async def _one_op(self, sequence: int) -> None:
        spec = self.spec
        self.logical_ops += 1
        if (
            spec.read_every
            and sequence % spec.read_every == 2
            and self.shadow
        ):
            address = self.rng.choice(sorted(self.shadow))
            try:
                response = await self.client.request_retry({
                    "op": "read",
                    "tenant": self.tenant_id,
                    "address": address,
                }, deadline=30.0)
            except ServiceError as error:
                self.refusals[error.code] += 1
                return
            data = response.get("data")
            seen = bytes.fromhex(data) if data else None
            acceptable = self._acceptable(address)
            if seen in acceptable:
                self.acked_ops += 1
                if address in self.ambiguous:
                    self.inline_ambiguous += 1
            else:
                self.inline_mismatches += 1
        elif spec.batch_every and sequence % spec.batch_every == 1:
            writes = []
            for offset in range(spec.batch_size):
                address = self._pick_address()
                writes.append((address, _block_payload(
                    self.tenant_id, spec.seed, address,
                    sequence * 1000 + offset,
                )))
            await self._mutate({
                "op": "batch",
                "tenant": self.tenant_id,
                "writes": [[a, d.hex()] for a, d in writes],
            }, writes)
        else:
            address = self._pick_address()
            data = _block_payload(
                self.tenant_id, spec.seed, address, sequence
            )
            await self._mutate({
                "op": "write",
                "tenant": self.tenant_id,
                "address": address,
                "data": data.hex(),
            }, writes=[(address, data)])

    async def run(self) -> None:
        for sequence in range(self.spec.ops_per_tenant):
            await self._one_op(sequence)

    async def verify(self) -> dict[str, int]:
        """Read back every tracked address; SDC = a third value.

        Addresses whose only history is a refused first write (no
        acked value to fall back to) are skipped, not guessed: with no
        acknowledged ground truth there is nothing to hold the service
        to -- an unwritten block legally reads as anything the engine
        initialises it to.
        """
        verified = sdc = ambiguous_ok = skipped = 0
        for address in sorted(set(self.shadow) | set(self.ambiguous)):
            if address not in self.shadow:
                skipped += 1
                continue
            acceptable = self._acceptable(address)
            while True:
                try:
                    data = await self.client.read(self.tenant_id, address)
                    break
                except QuotaExceeded:
                    await asyncio.sleep(0.05)
            if data in acceptable:
                verified += 1
                if address in self.ambiguous:
                    ambiguous_ok += 1
            else:
                sdc += 1
        return {
            "verified": verified,
            "sdc": sdc,
            "ambiguous_ok": ambiguous_ok,
            "skipped": skipped,
        }

    async def close(self) -> None:
        await self.client.close()


async def _deadline_probes(
    spec: ChaosSpec, root: pathlib.Path, registry: MetricRegistry
) -> dict[str, int]:
    """Fire ``deadline_ms = 0`` pings; every one must come back typed."""
    client = ServiceClient(
        root, spec.shards, registry=registry, rng_seed=spec.seed
    )
    refused = other = 0
    try:
        for index in range(spec.deadline_probes):
            shard = index % spec.shards
            if shard == spec.kill_shard:
                shard = spec.safe_shard()
            try:
                await client.request(
                    {"op": "ping", "tenant": "", "deadline_ms": 0},
                    shard=shard,
                )
                other += 1
            except ServiceError as error:
                if error.code == "deadline_exceeded":
                    refused += 1
                else:
                    other += 1
    finally:
        await client.close()
    return {
        "sent": spec.deadline_probes,
        "refused": refused,
        "other": other,
    }


async def _overload_burst(
    spec: ChaosSpec, root: pathlib.Path
) -> dict[str, int]:
    """Overflow one shard's dispatch queue with raw concurrent frames.

    Raw connections (not :class:`ServiceClient`) because one client
    serializes request/response per shard; shedding needs genuinely
    concurrent arrivals.  These sends are deliberately outside the
    retry-amplification accounting -- they exist to be refused.
    """
    shard = spec.safe_shard()
    path = str(ShardRouter(root, spec.shards).socket_path(shard))
    frame = encode_frame({"op": "ping", "tenant": ""})

    async def _probe() -> str:
        try:
            reader, writer = await asyncio.open_unix_connection(path)
        except OSError:
            return "connect_failed"
        try:
            writer.write(frame)
            await writer.drain()
            response = await read_frame(reader)
        except (OSError, asyncio.IncompleteReadError, ValueError):
            return "io_failed"
        finally:
            writer.close()
        if response.get("ok", False):
            return "ok"
        return str(response.get("error", {}).get("code", "internal"))

    outcomes = await asyncio.gather(
        *(_probe() for _ in range(spec.overload_probes))
    )
    counts = collections.Counter(outcomes)
    return {
        "probes": spec.overload_probes,
        "ok": counts.get("ok", 0),
        "shed": counts.get("overloaded", 0),
        "errors": spec.overload_probes
        - counts.get("ok", 0)
        - counts.get("overloaded", 0),
    }


async def _drive(
    spec: ChaosSpec,
    root: pathlib.Path,
    supervisor: ServiceSupervisor,
) -> dict[str, Any]:
    client_registry = MetricRegistry()
    traffic = [
        _ChaosTraffic(tenant_id, spec, root, client_registry)
        for tenant_id in spec.tenant_ids()
    ]
    for tenant in traffic:
        await tenant.provision()

    kill_events: list[dict[str, Any]] = []

    async def _chaos_kill() -> None:
        total = spec.ops_per_tenant * spec.tenants
        target = int(total * spec.kill_after_fraction)
        while (
            sum(t.acked_ops + sum(t.refusals.values()) for t in traffic)
            < target
        ):
            await asyncio.sleep(0.01)
        await asyncio.to_thread(supervisor.kill_shard, spec.kill_shard)
        kill_events.append({"shard": spec.kill_shard, "action": "kill"})
        await asyncio.to_thread(supervisor.restart_shard, spec.kill_shard)
        kill_events.append({"shard": spec.kill_shard, "action": "restart"})

    # Campaign wallclock (throughput denominator), not simulated time.
    # repro-lint: disable=RL002
    start = time.monotonic()
    deadline_report, overload_report, *_ = await asyncio.gather(
        _deadline_probes(spec, root, client_registry),
        _overload_burst(spec, root),
        _chaos_kill(),
        *(tenant.run() for tenant in traffic),
    )
    # repro-lint: disable=RL002
    elapsed = time.monotonic() - start

    # The victim must end the campaign degraded: one more write has to
    # bounce with the typed refusal while a read still serves.
    victim = next(
        t for t in traffic if t.tenant_id == spec.victim_tenant()
    )
    victim_address = 0
    victim_payload = _block_payload(
        victim.tenant_id, spec.seed, victim_address, 999_999
    )
    degraded_write_refused = False
    try:
        await victim.client.write(
            victim.tenant_id, victim_address, victim_payload
        )
    except TenantDegraded:
        degraded_write_refused = True
    except ServiceError:
        degraded_write_refused = False
    degraded_read_ok = False
    try:
        await victim.client.read(victim.tenant_id, victim_address)
        degraded_read_ok = True
    except ServiceError:
        degraded_read_ok = False

    verify_totals = collections.Counter()
    for tenant in traffic:
        verify_totals.update(await tenant.verify())

    refusals = collections.Counter()
    for tenant in traffic:
        refusals.update(tenant.refusals)

    logical_ops = sum(t.logical_ops for t in traffic) + (
        deadline_report["sent"]
    ) + verify_totals["verified"] + verify_totals["sdc"]
    client_totals = client_registry.snapshot().totals()
    sends = client_totals.get("service.client.sends", 0)
    amplification = (sends / logical_ops) if logical_ops else 0.0

    all_latencies = [
        sample for t in traffic for sample in t.latencies_ms
    ]
    breaker_states = {
        t.tenant_id: t.client.breaker_states() for t in traffic
    }
    for tenant in traffic:
        await tenant.close()

    return {
        "elapsed_s": round(elapsed, 3),
        "acked_ops": sum(t.acked_ops for t in traffic),
        "logical_ops": logical_ops,
        "refusals": dict(sorted(refusals.items())),
        "p50_ms": round(percentile(all_latencies, 50), 3),
        "p99_ms": round(percentile(all_latencies, 99), 3),
        "verified_blocks": verify_totals["verified"],
        "sdc_blocks": verify_totals["sdc"],
        "ambiguous_ok_blocks": verify_totals["ambiguous_ok"],
        "skipped_blocks": verify_totals["skipped"],
        "inline_mismatches": sum(t.inline_mismatches for t in traffic),
        "inline_ambiguous": sum(t.inline_ambiguous for t in traffic),
        "kill_events": kill_events,
        "deadline": deadline_report,
        "overload": overload_report,
        "client": {
            "sends": sends,
            "retries": client_totals.get("service.client.retries", 0),
            "fast_fails": client_totals.get(
                "service.breaker.fast_fail", 0
            ),
            "amplification": round(amplification, 3),
        },
        "breaker": {
            "opened": client_totals.get("service.breaker.opened", 0),
            "half_open": client_totals.get(
                "service.breaker.half_open", 0
            ),
            "closed": client_totals.get("service.breaker.closed", 0),
            "states": breaker_states,
        },
        "degraded": {
            "tenant": spec.victim_tenant(),
            "write_refused": degraded_write_refused,
            "read_ok": degraded_read_ok,
        },
    }


def run_chaos(
    spec: ChaosSpec,
    root: str | pathlib.Path,
    out_path: str | pathlib.Path | None = None,
) -> dict[str, Any]:
    """Run one chaos campaign end to end; returns the bench payload."""
    root = pathlib.Path(root)
    supervisor = ServiceSupervisor(
        root,
        num_shards=spec.shards,
        secret_seed=spec.secret_seed,
        options=spec.shard_options(),
    )
    supervisor.start()
    try:
        supervisor.wait_ready()
        results = asyncio.run(_drive(spec, root, supervisor))
        health = {}
        for shard in range(spec.shards):
            http = str(supervisor.router.http_socket_path(shard))
            health[f"shard-{shard}"] = scrape(http, "/health")
    finally:
        supervisor.stop()

    refusals = results["refusals"]
    typed_only = refusals.get("internal", 0) == 0
    payload = {
        "schema": CHAOS_SCHEMA,
        "bench": "chaos",
        "config": spec.config_dict(),
        "results": results,
        "health": health,
        "all_verified": (
            results["sdc_blocks"] == 0
            and results["inline_mismatches"] == 0
            and typed_only
        ),
    }
    if out_path is not None:
        pathlib.Path(out_path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    return payload


__all__ = ["CHAOS_SCHEMA", "ChaosSpec", "run_chaos"]
