"""A per-shard circuit breaker: closed -> open -> half-open -> closed.

The breaker sits in front of each shard connection on the *client*
side.  Consecutive transport failures trip it open; while open, calls
fail fast locally (no socket churn against a dead worker, no 30-second
pile-up of doomed requests).  After ``cooldown`` seconds the breaker
admits a limited number of *half-open probes*; one probe succeeding
closes the breaker, one failing re-opens it for another cooldown.

Typed service refusals (quota, deadline, degraded...) are *successes*
to the breaker: the shard answered, so the circuit is healthy -- only
transport-level failures (connect refused, mid-request hangup) count.

The breaker is plain single-threaded state -- the client runs on one
event loop -- and takes an injectable ``clock`` so tests drive it with
a fake time source.  ``on_transition(old, new)`` lets the owner meter
state changes (``service.breaker.*``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recover knobs for one :class:`CircuitBreaker`."""

    failure_threshold: int = 5
    cooldown: float = 0.25
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown <= 0.0:
            raise ValueError("cooldown must be > 0")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


class CircuitBreaker:
    """One shard's circuit state."""

    def __init__(
        self,
        config: BreakerConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        self.config = config if config is not None else BreakerConfig()
        self.clock = clock
        self.on_transition = on_transition
        self.state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0

    def _transition(self, new: str) -> None:
        old, self.state = self.state, new
        if old != new and self.on_transition is not None:
            self.on_transition(old, new)

    def allow(self) -> bool:
        """Whether one request may proceed right now.

        In ``half_open`` this *admits a probe* (at most
        ``half_open_probes`` in flight); the caller must follow up with
        exactly one ``record_success``/``record_failure`` per admitted
        request in every state.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.clock() - self._opened_at < self.config.cooldown:
                return False
            self._transition(HALF_OPEN)
            self._probes_inflight = 0
        if self._probes_inflight >= self.config.half_open_probes:
            return False
        self._probes_inflight += 1
        return True

    def record_success(self) -> None:
        if self.state == HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._transition(CLOSED)
        self._failures = 0

    def record_failure(self) -> None:
        if self.state == HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._open()
            return
        self._failures += 1
        if self.state == CLOSED and (
            self._failures >= self.config.failure_threshold
        ):
            self._open()

    def _open(self) -> None:
        self._failures = 0
        self._opened_at = self.clock()
        self._transition(OPEN)


__all__ = ["BreakerConfig", "CircuitBreaker", "CLOSED", "HALF_OPEN", "OPEN"]
