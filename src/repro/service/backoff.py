"""Exponential backoff with full jitter (the AWS-architecture flavor).

The old ``request_retry`` loop hammered a restarting shard every 50 ms
flat -- N clients all retrying in lockstep is a synchronized thundering
herd exactly when the service is weakest.  *Full jitter* draws each
sleep uniformly from ``[0, min(cap, base * 2**attempt))``: the expected
backoff still doubles per attempt, but clients decorrelate immediately,
so a restarted shard sees a trickle instead of a wall.

The draw comes from a caller-supplied *seeded* ``random.Random``: retry
schedules are reproducible per client (RL002-clean) while still
decorrelated across clients via their distinct seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class BackoffPolicy:
    """Full-jitter exponential backoff: sleep ~ U[0, min(cap, base*2^n))."""

    base: float = 0.02
    cap: float = 1.0

    def __post_init__(self) -> None:
        if self.base <= 0.0 or self.cap < self.base:
            raise ValueError("need 0 < base <= cap")

    def ceiling(self, attempt: int) -> float:
        """The un-jittered ceiling for retry ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        # 2**attempt overflows nothing here: cap clamps long before
        # the float does, so short-circuit the power once it is past.
        if self.base * 2.0 ** min(attempt, 63) >= self.cap:
            return self.cap
        return self.base * 2.0**attempt

    def delay(self, attempt: int, rng: random.Random) -> float:
        """One jittered sleep for retry ``attempt``."""
        return rng.uniform(0.0, self.ceiling(attempt))


__all__ = ["BackoffPolicy"]
