"""Typed service errors and their structured wire form.

Every refusal the service can issue is a :class:`ServiceError` subclass
with a stable machine-readable ``code``.  The server maps an error to a
structured response with :func:`to_response`; the client rebuilds the
typed exception with :func:`from_response`, so a caller three processes
away can still ``except QuotaExceeded``.  The set of codes is closed --
anything the hierarchy does not name travels as ``internal`` and is a
bug, not an API.
"""

from __future__ import annotations

from typing import Any


class ServiceError(Exception):
    """Base of every typed service refusal.

    ``code`` is the stable wire identifier; ``detail`` carries
    structured context (tenant id, quota kind, shard index) that the
    client-side exception preserves.
    """

    code = "internal"

    def __init__(self, message: str, **detail: Any) -> None:
        super().__init__(message)
        self.message = message
        self.detail: dict[str, Any] = dict(detail)


class TenantNotFound(ServiceError):
    """No active tenant under that id on this shard (or it retired)."""

    code = "tenant_not_found"


class QuotaExceeded(ServiceError):
    """Admission control refused the request (op rate or byte budget)."""

    code = "quota_exceeded"


class ShardUnavailable(ServiceError):
    """The shard that owns the tenant is not answering its socket."""

    code = "shard_unavailable"


class DrainInProgress(ServiceError):
    """The tenant (or whole shard) is draining; writes are refused."""

    code = "drain_in_progress"


class DeadlineExceeded(ServiceError):
    """The request's ``deadline_ms`` expired before the shard ran it.

    Refused *before* dispatch, so nothing was applied: safe to retry.
    ``deadline_ms <= 0`` is "expired on arrival" -- a deterministic
    refusal lever for tests and probes.
    """

    code = "deadline_exceeded"


class Overloaded(ServiceError):
    """The shard's dispatch queue is full; shed before any work.

    Charged nothing against quotas (the tenant did not consume
    service); the client should back off and retry.
    """

    code = "overloaded"


class TenantDegraded(ServiceError):
    """The tenant is in degraded read-only mode; writes are refused.

    Entered on repeated storage faults or spare-pool exhaustion; reads
    are still served and ``/health`` reports the reason.
    """

    code = "degraded"


class StorageFaulted(ServiceError):
    """The tenant's backing store refused this durable mutation.

    The write was **not** acknowledged, but the failure is ambiguous
    one level up: the journal record may or may not have sealed before
    the fault.  Re-sending the same (address, data) pair converges.
    """

    code = "storage_fault"


#: wire code -> exception class, for client-side rehydration
ERROR_CODES: dict[str, type[ServiceError]] = {
    cls.code: cls
    for cls in (
        ServiceError,
        TenantNotFound,
        QuotaExceeded,
        ShardUnavailable,
        DrainInProgress,
        DeadlineExceeded,
        Overloaded,
        TenantDegraded,
        StorageFaulted,
    )
}


def to_response(error: ServiceError) -> dict[str, Any]:
    """The structured error response frame for one typed error."""
    return {
        "ok": False,
        "error": {
            "code": error.code,
            "message": error.message,
            "detail": error.detail,
        },
    }


def from_response(payload: dict[str, Any]) -> ServiceError:
    """Rebuild the typed exception carried by an error response."""
    if payload.get("ok", False):
        raise ValueError("from_response called on a success payload")
    body = payload.get("error", {})
    cls = ERROR_CODES.get(body.get("code", "internal"), ServiceError)
    error = cls(body.get("message", "unknown service error"))
    error.detail = dict(body.get("detail", {}))
    return error


__all__ = [
    "DeadlineExceeded",
    "DrainInProgress",
    "ERROR_CODES",
    "Overloaded",
    "QuotaExceeded",
    "ServiceError",
    "ShardUnavailable",
    "StorageFaulted",
    "TenantDegraded",
    "TenantNotFound",
    "from_response",
    "to_response",
]
