"""Typed service errors and their structured wire form.

Every refusal the service can issue is a :class:`ServiceError` subclass
with a stable machine-readable ``code``.  The server maps an error to a
structured response with :func:`to_response`; the client rebuilds the
typed exception with :func:`from_response`, so a caller three processes
away can still ``except QuotaExceeded``.  The set of codes is closed --
anything the hierarchy does not name travels as ``internal`` and is a
bug, not an API.
"""

from __future__ import annotations

from typing import Any


class ServiceError(Exception):
    """Base of every typed service refusal.

    ``code`` is the stable wire identifier; ``detail`` carries
    structured context (tenant id, quota kind, shard index) that the
    client-side exception preserves.
    """

    code = "internal"

    def __init__(self, message: str, **detail: Any) -> None:
        super().__init__(message)
        self.message = message
        self.detail: dict[str, Any] = dict(detail)


class TenantNotFound(ServiceError):
    """No active tenant under that id on this shard (or it retired)."""

    code = "tenant_not_found"


class QuotaExceeded(ServiceError):
    """Admission control refused the request (op rate or byte budget)."""

    code = "quota_exceeded"


class ShardUnavailable(ServiceError):
    """The shard that owns the tenant is not answering its socket."""

    code = "shard_unavailable"


class DrainInProgress(ServiceError):
    """The tenant (or whole shard) is draining; writes are refused."""

    code = "drain_in_progress"


#: wire code -> exception class, for client-side rehydration
ERROR_CODES: dict[str, type[ServiceError]] = {
    cls.code: cls
    for cls in (
        ServiceError,
        TenantNotFound,
        QuotaExceeded,
        ShardUnavailable,
        DrainInProgress,
    )
}


def to_response(error: ServiceError) -> dict[str, Any]:
    """The structured error response frame for one typed error."""
    return {
        "ok": False,
        "error": {
            "code": error.code,
            "message": error.message,
            "detail": error.detail,
        },
    }


def from_response(payload: dict[str, Any]) -> ServiceError:
    """Rebuild the typed exception carried by an error response."""
    if payload.get("ok", False):
        raise ValueError("from_response called on a success payload")
    body = payload.get("error", {})
    cls = ERROR_CODES.get(body.get("code", "internal"), ServiceError)
    error = cls(body.get("message", "unknown service error"))
    error.detail = dict(body.get("detail", {}))
    return error


__all__ = [
    "DrainInProgress",
    "ERROR_CODES",
    "QuotaExceeded",
    "ServiceError",
    "ShardUnavailable",
    "TenantNotFound",
    "from_response",
    "to_response",
]
