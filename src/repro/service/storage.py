"""FileStore: a :class:`DurableStore` mirrored onto a real directory.

The persist subsystem models stable storage in memory so the crash
matrix can tear writes deterministically.  A *service* worker can be
``SIGKILL``\\ ed for real, so its durable state must live on disk: this
subclass mirrors every mutation into the tenant's persist directory
through a :class:`~repro.faultfs.layer.FaultFS` layer, then applies it
to the in-memory model (keeping every invariant the recovery machine
relies on).  Disk first: if the device refuses the mutation with a
:class:`~repro.faultfs.plan.StorageFault`, the in-memory model stays
untouched and the store remains usable for the retry.

Layout under ``root``::

    journal/00000000.rec        appended record payload
    journal/00000000.sealed     empty marker: the atomic commit mark
    ckpt0.bin / ckpt1.bin       shadow checkpoint slot bodies
    ckpt0.meta / ckpt1.meta     slot epoch (JSON)
    ckpt0.sealed / ckpt1.sealed empty marker: the slot's seal

Durability barriers (ISSUE 9; the "no fsync" caveat is gone):

* ``journal_seal`` fsyncs the record payload, creates the seal marker,
  and fsyncs the journal directory -- only then is the write
  acknowledgeable, so power loss at any earlier point leaves at worst
  an unsealed (or torn) record that
  :func:`repro.persist.journal.scan_journal` already discards.
* ``checkpoint_write`` stages the slot body in a temp file and lands it
  with an atomic ``os.replace`` after an fsync, so a crash mid-rewrite
  never shows a half-new body under an old seal; ``checkpoint_seal``
  fsyncs the marker's directory entry.

The CRC framing inside each record payload catches a partially flushed
``.rec`` file the same way it catches a simulated torn write, so
:func:`load_file_store` never needs to distinguish the two.
"""

from __future__ import annotations

import json
import pathlib

from repro.faultfs.layer import FaultFS
from repro.persist.store import (
    CheckpointSlot,
    CrashPlan,
    DurableStore,
    JournalSlot,
)

_SLOT_COUNT = 2


class FileStore(DurableStore):
    """Durable store whose journal and checkpoint slots live on disk."""

    def __init__(
        self,
        root: str | pathlib.Path,
        plan: CrashPlan | None = None,
        fs: FaultFS | None = None,
    ) -> None:
        super().__init__(plan=plan)
        self.root = pathlib.Path(root)
        self.fs = fs if fs is not None else FaultFS()
        self.journal_dir = self.root / "journal"
        self.fs.mkdir(self.journal_dir)

    # -- path helpers -------------------------------------------------------

    def _record_path(self, index: int) -> pathlib.Path:
        return self.journal_dir / f"{index:08d}.rec"

    def _seal_path(self, index: int) -> pathlib.Path:
        return self.journal_dir / f"{index:08d}.sealed"

    def _slot_paths(
        self, slot: int
    ) -> tuple[pathlib.Path, pathlib.Path, pathlib.Path]:
        base = self.root / f"ckpt{slot}"
        return (
            base.with_suffix(".bin"),
            base.with_suffix(".meta"),
            base.with_suffix(".sealed"),
        )

    def _will_crash(self) -> bool:
        """Whether the *next* in-memory step is an armed crash point.

        A ``CrashPlan`` models power lost at the in-memory mutation;
        mirroring that mutation to disk first would leave the disk
        ahead of the lost power, so the mirror is skipped and the
        superclass raises :class:`SimulatedCrash` as before.
        """
        return self.plan is not None and self.plan.step == self.step

    # -- mirrored mutations -------------------------------------------------

    def journal_append(self, payload: bytes, label: str) -> int:
        if not self._will_crash():
            self.fs.write_bytes(self._record_path(len(self.journal)), payload)
        return super().journal_append(payload, label)

    def journal_seal(self, index: int, label: str) -> None:
        if not self._will_crash():
            # Barrier order: payload durable, then the marker, then the
            # marker's directory entry -- the ack point.
            self.fs.fsync(self._record_path(index))
            self.fs.touch(self._seal_path(index))
            self.fs.fsync_dir(self.journal_dir)
        super().journal_seal(index, label)

    def journal_truncate(self) -> None:
        if not self._will_crash():
            for path in sorted(self.journal_dir.iterdir()):
                self.fs.unlink(path)
            self.fs.fsync_dir(self.journal_dir)
        super().journal_truncate()

    def checkpoint_write(self, slot: int, payload: bytes, epoch: int) -> None:
        if not self._will_crash():
            body, meta, seal = self._slot_paths(slot)
            # Unseal first: a kill between the marker removal and the
            # body landing must leave the slot invalid, never
            # half-new-half-sealed.
            self.fs.unlink(seal)
            self.fs.fsync_dir(self.root)
            staging = body.with_suffix(".tmp")
            self.fs.write_bytes(staging, payload)
            self.fs.fsync(staging)
            self.fs.replace(staging, body)
            self.fs.write_bytes(meta, json.dumps({"epoch": epoch}).encode())
            self.fs.fsync(meta)
        super().checkpoint_write(slot, payload, epoch)

    def checkpoint_seal(self, slot: int, epoch: int) -> None:
        if not self._will_crash():
            _, _, seal = self._slot_paths(slot)
            self.fs.touch(seal)
            self.fs.fsync_dir(self.root)
        super().checkpoint_seal(slot, epoch)


def load_file_store(
    root: str | pathlib.Path, fs: FaultFS | None = None
) -> FileStore:
    """Rebuild a :class:`FileStore` from a (possibly killed) directory.

    A payload file without its seal marker loads as an unsealed slot;
    recovery's scan discards it, the same as a crash between append and
    seal in the in-memory model.  Checkpoint slots load the same way.
    ``fs`` becomes the rebuilt store's fault layer for *future*
    mutations; loading itself only reads.
    """
    store = FileStore(root, fs=fs)
    for rec_path in sorted(store.journal_dir.glob("*.rec")):
        index = int(rec_path.stem)
        # Indexes are dense by construction (appends mirror a list);
        # re-append in sorted order reproduces the list positions.
        while len(store.journal) < index:
            # A vanished payload with later survivors cannot happen
            # without external tampering; represent it as an unsealed
            # hole so the scan's tail discipline still applies.
            store.journal.append(JournalSlot(payload=b"", sealed=False))
        store.journal.append(JournalSlot(payload=b"", sealed=False))
        store.journal[index].payload = rec_path.read_bytes()
        store.journal[index].sealed = store._seal_path(index).exists()
    for slot in range(_SLOT_COUNT):
        body, meta, seal = store._slot_paths(slot)
        if not body.exists() or not meta.exists():
            continue
        target: CheckpointSlot = store.slots[slot]
        target.payload = body.read_bytes()
        target.epoch = int(json.loads(meta.read_text())["epoch"])
        target.sealed = seal.exists()
    return store


__all__ = ["FileStore", "load_file_store"]
