"""FileStore: a :class:`DurableStore` mirrored onto a real directory.

The persist subsystem models stable storage in memory so the crash
matrix can tear writes deterministically.  A *service* worker can be
``SIGKILL``\\ ed for real, so its durable state must live on disk: this
subclass applies every mutation to the in-memory model first (keeping
every invariant the recovery machine relies on) and then mirrors it
into the tenant's persist directory.

Layout under ``root``::

    journal/00000000.rec        appended record payload
    journal/00000000.sealed     empty marker: the atomic commit mark
    ckpt0.bin / ckpt1.bin       shadow checkpoint slot bodies
    ckpt0.meta / ckpt1.meta     slot epoch (JSON)
    ckpt0.sealed / ckpt1.sealed empty marker: the slot's seal

Crash semantics of the mirror: the server acknowledges a write only
after the seal marker file exists, so a kill at any earlier point
leaves, at worst, an unsealed (or partially written) record --
exactly the torn/unsealed tail :func:`repro.persist.journal.scan_journal`
already discards.  The CRC framing inside each record payload catches a
partially flushed ``.rec`` file the same way it catches a simulated
torn write, so :func:`load_file_store` never needs to distinguish the
two.  Durability is directory-consistency-grade (no ``fsync``; the
model is process death, not power loss on a real disk).
"""

from __future__ import annotations

import json
import pathlib

from repro.persist.store import (
    CheckpointSlot,
    CrashPlan,
    DurableStore,
    JournalSlot,
)

_SLOT_COUNT = 2


class FileStore(DurableStore):
    """Durable store whose journal and checkpoint slots live on disk."""

    def __init__(
        self, root: str | pathlib.Path, plan: CrashPlan | None = None
    ) -> None:
        super().__init__(plan=plan)
        self.root = pathlib.Path(root)
        self.journal_dir = self.root / "journal"
        self.journal_dir.mkdir(parents=True, exist_ok=True)

    # -- path helpers -------------------------------------------------------

    def _record_path(self, index: int) -> pathlib.Path:
        return self.journal_dir / f"{index:08d}.rec"

    def _seal_path(self, index: int) -> pathlib.Path:
        return self.journal_dir / f"{index:08d}.sealed"

    def _slot_paths(
        self, slot: int
    ) -> tuple[pathlib.Path, pathlib.Path, pathlib.Path]:
        base = self.root / f"ckpt{slot}"
        return (
            base.with_suffix(".bin"),
            base.with_suffix(".meta"),
            base.with_suffix(".sealed"),
        )

    # -- mirrored mutations -------------------------------------------------

    def journal_append(self, payload: bytes, label: str) -> int:
        index = super().journal_append(payload, label)
        self._record_path(index).write_bytes(payload)
        return index

    def journal_seal(self, index: int, label: str) -> None:
        super().journal_seal(index, label)
        self._seal_path(index).touch()

    def journal_truncate(self) -> None:
        super().journal_truncate()
        for path in self.journal_dir.iterdir():
            path.unlink()

    def checkpoint_write(self, slot: int, payload: bytes, epoch: int) -> None:
        super().checkpoint_write(slot, payload, epoch)
        body, meta, seal = self._slot_paths(slot)
        # Unseal first: a kill between the marker removal and the body
        # write must leave the slot invalid, never half-new-half-sealed.
        seal.unlink(missing_ok=True)
        body.write_bytes(payload)
        meta.write_text(json.dumps({"epoch": epoch}))

    def checkpoint_seal(self, slot: int, epoch: int) -> None:
        super().checkpoint_seal(slot, epoch)
        _, _, seal = self._slot_paths(slot)
        seal.touch()


def load_file_store(root: str | pathlib.Path) -> FileStore:
    """Rebuild a :class:`FileStore` from a (possibly killed) directory.

    A payload file without its seal marker loads as an unsealed slot;
    recovery's scan discards it, the same as a crash between append and
    seal in the in-memory model.  Checkpoint slots load the same way.
    """
    store = FileStore(root)
    for rec_path in sorted(store.journal_dir.glob("*.rec")):
        index = int(rec_path.stem)
        # Indexes are dense by construction (appends mirror a list);
        # re-append in sorted order reproduces the list positions.
        while len(store.journal) < index:
            # A vanished payload with later survivors cannot happen
            # without external tampering; represent it as an unsealed
            # hole so the scan's tail discipline still applies.
            store.journal.append(JournalSlot(payload=b"", sealed=False))
        store.journal.append(JournalSlot(payload=b"", sealed=False))
        store.journal[index].payload = rec_path.read_bytes()
        store.journal[index].sealed = store._seal_path(index).exists()
    for slot in range(_SLOT_COUNT):
        body, meta, seal = store._slot_paths(slot)
        if not body.exists() or not meta.exists():
            continue
        target: CheckpointSlot = store.slots[slot]
        target.payload = body.read_bytes()
        target.epoch = int(json.loads(meta.read_text())["epoch"])
        target.sealed = seal.exists()
    return store


__all__ = ["FileStore", "load_file_store"]
