"""Parallel benchmark runner: shard applications across worker processes.

``repro bench`` replays each application's DRAM write-back stream (the
same :class:`~repro.harness.runner.WritebackFilter` stream that drives
Table 2) through a functional :class:`SecureMemory` engine wrapped in the
:class:`~repro.fast.batch_memory.BatchSecureMemory` facade, then reads
every written block back and checks the payloads round-tripped.  Each
application runs under its own fresh :class:`MetricRegistry`; the
per-app registries are merged into one ``BENCH_*.json``-shaped payload.

Determinism contract (pinned by ``tests/fast/test_parallel_bench.py``):
the merged payload is **byte-identical** for any worker count on the
same seed.  Three rules keep it that way:

* apps are independent -- each worker builds its whole world (traces,
  engine, key) from ``(app, seed)`` alone, never from shared state;
* the payload carries no wall-clock, PID, hostname or worker count;
* every dict in the payload is emitted with sorted keys.

``workers=1`` runs inline (no pool), so single-process debugging hits
the exact same code path the pool workers execute.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import pathlib
from dataclasses import dataclass

from repro.core.engine.config import preset
from repro.core.engine.secure_memory import SecureMemory
from repro.fast.batch_memory import BatchSecureMemory
from repro.harness.runner import BLOCK_BYTES, WritebackFilter
from repro.obs.metrics import MetricRegistry, use_registry
from repro.workloads.micro import MICRO_PROFILES, micro_profile
from repro.workloads.parsec import profile

BENCH_SCHEMA = "repro.bench/1"

#: writes/reads per batch flush -- large enough to amortize the batched
#: kernels, small enough to keep peak memory flat.
FLUSH_CHUNK = 256


@dataclass(frozen=True)
class BenchSpec:
    """Everything that determines one bench run's payload (and nothing
    that doesn't -- worker count is deliberately absent)."""

    apps: tuple = ()
    mode: str = "fast"
    accesses: int = 20_000
    region_mb: int = 8
    cores: int = 4
    seed: int = 1
    preset: str = "combined"
    keystream: str = "fast"

    def config_dict(self) -> dict:
        return {
            "apps": sorted(self.apps),
            "mode": self.mode,
            "accesses": self.accesses,
            "region_mb": self.region_mb,
            "cores": self.cores,
            "seed": self.seed,
            "preset": self.preset,
            "keystream": self.keystream,
        }


def _resolve_profile(name: str):
    if name in MICRO_PROFILES:
        return micro_profile(name)
    return profile(name)


def _app_key(app: str, seed: int) -> bytes:
    """48-byte engine key derived from (app, seed) alone."""
    return hashlib.sha384(f"repro.bench/{app}/{seed}".encode()).digest()


def _payload_for(app: str, seed: int, block: int, sequence: int) -> bytes:
    """Deterministic 64-byte block payload for one write-back."""
    return hashlib.sha512(
        f"{app}/{seed}/{block}/{sequence}".encode()
    ).digest()


def merge_totals(totals: list[dict[str, int]]) -> dict[str, int]:
    """Sum metric-total dicts into one, with deterministically sorted keys.

    The merge discipline every multi-worker payload in this repo uses:
    values summed per name, keys emitted sorted, so the merged dict is
    byte-identical for any worker count or arrival order.
    """
    merged: dict[str, int] = {}
    for part in totals:
        for name in part:
            merged[name] = merged.get(name, 0) + part[name]
    return {name: merged[name] for name in sorted(merged)}


def state_digest(engine: SecureMemory) -> str:
    """Hash of the engine's externally observable end state.

    Two runs that produce the same digest wrote bit-identical
    ciphertexts, counter metadata and tree root -- the strongest
    cross-worker / cross-mode equivalence signal one number can carry.
    """
    h = hashlib.sha256()
    for block in sorted(engine.ciphertexts):
        h.update(block.to_bytes(8, "little"))
        h.update(engine.ciphertexts[block])
    for group in sorted(engine.counter_storage):
        h.update(group.to_bytes(8, "little"))
        h.update(engine.counter_storage[group])
    h.update(engine.tree.root_digest().to_bytes(32, "little"))
    return h.hexdigest()


def run_app(app: str, spec: BenchSpec) -> tuple[dict, dict]:
    """Run one application; returns (app results, metric totals)."""
    registry = MetricRegistry()
    with use_registry(registry):
        app_profile = _resolve_profile(app)
        region_bytes = spec.region_mb * 1024 * 1024
        region_blocks = region_bytes // BLOCK_BYTES
        traces = app_profile.traces(
            spec.accesses, region_blocks, spec.cores, spec.seed
        )
        writebacks, instructions = WritebackFilter().filter(traces)

        config = preset(
            spec.preset,
            protected_bytes=region_bytes,
            keystream_mode=spec.keystream,
        )
        engine = SecureMemory(config, _app_key(app, spec.seed))
        batch = BatchSecureMemory(engine, mode=spec.mode)

        payloads: dict[int, bytes] = {}
        for start in range(0, len(writebacks), FLUSH_CHUNK):
            chunk = writebacks[start : start + FLUSH_CHUNK]
            writes = []
            for offset, block in enumerate(chunk):
                data = _payload_for(app, spec.seed, block, start + offset)
                payloads[block] = data
                writes.append((block * BLOCK_BYTES, data))
            batch.write_many(writes)

        mismatches = 0
        written = sorted(payloads)
        for start in range(0, len(written), FLUSH_CHUNK):
            chunk = written[start : start + FLUSH_CHUNK]
            results = batch.read_many(
                [block * BLOCK_BYTES for block in chunk]
            )
            for block, result in zip(chunk, results):
                if result.data != payloads[block]:
                    mismatches += 1

        app_results = {
            "instructions": instructions,
            "writebacks": len(writebacks),
            "unique_blocks": len(written),
            "readback_mismatches": mismatches,
            "state_digest": state_digest(engine),
        }
    return app_results, registry.snapshot().totals()


def _worker(task: tuple) -> tuple:
    app, spec = task
    return app, run_app(app, spec)


def run_bench(spec: BenchSpec, workers: int = 1) -> dict:
    """Run every app in ``spec`` and merge into one payload.

    ``workers`` only chooses *where* apps run (inline vs a process
    pool); it must never change the payload.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    tasks = [(app, spec) for app in sorted(spec.apps)]
    if workers == 1:
        outcomes = [_worker(task) for task in tasks]
    else:
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        with context.Pool(min(workers, len(tasks) or 1)) as pool:
            outcomes = pool.map(_worker, tasks)

    results = {}
    for app, (app_results, _) in sorted(outcomes):
        results[app] = app_results
    merged = merge_totals([totals for _, (_, totals) in sorted(outcomes)])
    return {
        "schema": BENCH_SCHEMA,
        "bench": "parallel",
        "config": spec.config_dict(),
        "results": results,
        "metrics": merged,
    }


def render_payload(payload: dict) -> str:
    """The canonical byte form every worker count must reproduce."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def dump_payload(payload: dict, path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(render_payload(payload))
    return path


__all__ = [
    "BENCH_SCHEMA",
    "BenchSpec",
    "dump_payload",
    "merge_totals",
    "render_payload",
    "run_app",
    "run_bench",
    "state_digest",
]
