"""Parallel benchmark runner: shard applications across worker processes.

``repro bench`` replays each application's DRAM write-back stream (the
same :class:`~repro.harness.runner.WritebackFilter` stream that drives
Table 2) through a functional :class:`SecureMemory` engine wrapped in the
:class:`~repro.fast.batch_memory.BatchSecureMemory` facade, then reads
every written block back and checks the payloads round-tripped.  Each
application runs under its own fresh :class:`MetricRegistry`; the
per-app registries are merged into one ``BENCH_*.json``-shaped payload.

Two transports move work to the pool, selected by ``run_bench``'s
``transport`` argument:

* ``"shm"`` (default) -- the parent generates each app's write-back
  stream once, publishes the block indices as an int64 array in a
  ``multiprocessing.shared_memory`` segment, and workers attach a numpy
  view: the block batch crosses the process boundary zero-copy instead
  of being pickled through the pool pipe.  The parent owns every
  segment and unlinks them all in a ``finally``, so worker crashes
  cannot leak ``/dev/shm`` entries.
* ``"pickle"`` -- the legacy path: workers receive ``(app, spec)`` and
  regenerate their traces locally.

Determinism contract (pinned by ``tests/fast/test_parallel_bench.py``):
the merged payload is **byte-identical** for any worker count *and
either transport* on the same seed.  Three rules keep it that way:

* apps are independent -- each app's whole world (traces, engine, key)
  is derived from ``(app, seed)`` alone, never from shared state;
* the payload carries no wall-clock, PID, hostname, worker count or
  transport name;
* every dict in the payload is emitted with sorted keys.

``workers=1`` runs inline (no pool), so single-process debugging hits
the exact same code path the pool workers execute -- including, under
the shm transport, the attach-to-segment path.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import multiprocessing
import os
import pathlib
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from repro.core.engine.config import preset
from repro.core.engine.secure_memory import SecureMemory
from repro.fast.batch_memory import BatchSecureMemory
from repro.harness.runner import BLOCK_BYTES, WritebackFilter
from repro.obs.metrics import MetricRegistry, use_registry
from repro.workloads.micro import MICRO_PROFILES, micro_profile
from repro.workloads.parsec import profile

BENCH_SCHEMA = "repro.bench/1"

#: writes/reads per batch flush -- large enough to amortize the batched
#: kernels, small enough to keep peak memory flat.
FLUSH_CHUNK = 256

#: recognizable /dev/shm prefix so leak checks (and humans) can find
#: stray bench segments
SHM_PREFIX = "repro-bench-"

_SHM_SEQ = itertools.count()

TRANSPORTS = ("shm", "pickle")


@dataclass(frozen=True)
class BenchSpec:
    """Everything that determines one bench run's payload (and nothing
    that doesn't -- worker count and transport are deliberately absent)."""

    apps: tuple = ()
    mode: str = "fast"
    accesses: int = 20_000
    region_mb: int = 8
    cores: int = 4
    seed: int = 1
    preset: str = "combined"
    keystream: str = "splitmix"
    paranoid_sample: int = 0

    def config_dict(self) -> dict:
        return {
            "apps": sorted(self.apps),
            "mode": self.mode,
            "accesses": self.accesses,
            "region_mb": self.region_mb,
            "cores": self.cores,
            "seed": self.seed,
            "preset": self.preset,
            "keystream": self.keystream,
            "paranoid_sample": self.paranoid_sample,
        }


def _resolve_profile(name: str):
    if name in MICRO_PROFILES:
        return micro_profile(name)
    return profile(name)


def _app_key(app: str, seed: int) -> bytes:
    """48-byte engine key derived from (app, seed) alone."""
    return hashlib.sha384(f"repro.bench/{app}/{seed}".encode()).digest()


def _payload_for(app: str, seed: int, block: int, sequence: int) -> bytes:
    """Deterministic 64-byte block payload for one write-back."""
    return hashlib.sha512(
        f"{app}/{seed}/{block}/{sequence}".encode()
    ).digest()


def merge_totals(totals: list[dict[str, int]]) -> dict[str, int]:
    """Sum metric-total dicts into one, with deterministically sorted keys.

    The merge discipline every multi-worker payload in this repo uses:
    values summed per name, keys emitted sorted, so the merged dict is
    byte-identical for any worker count or arrival order.
    """
    merged: dict[str, int] = {}
    for part in totals:
        for name in part:
            merged[name] = merged.get(name, 0) + part[name]
    return {name: merged[name] for name in sorted(merged)}


def state_digest(engine: SecureMemory) -> str:
    """Hash of the engine's externally observable end state.

    Two runs that produce the same digest wrote bit-identical
    ciphertexts, counter metadata and tree root -- the strongest
    cross-worker / cross-mode equivalence signal one number can carry.
    """
    h = hashlib.sha256()
    for block in sorted(engine.ciphertexts):
        h.update(int(block).to_bytes(8, "little"))
        h.update(engine.ciphertexts[block])
    for group in sorted(engine.counter_storage):
        h.update(int(group).to_bytes(8, "little"))
        h.update(engine.counter_storage[group])
    h.update(engine.tree.root_digest().to_bytes(32, "little"))
    return h.hexdigest()


def _trace_writebacks(app: str, spec: BenchSpec) -> tuple[list, int]:
    """Generate one app's DRAM write-back stream (meters into the
    active registry: the LLC filter cache counts its lookups)."""
    app_profile = _resolve_profile(app)
    region_blocks = spec.region_mb * 1024 * 1024 // BLOCK_BYTES
    traces = app_profile.traces(
        spec.accesses, region_blocks, spec.cores, spec.seed
    )
    return WritebackFilter().filter(traces)


def prepare_app(app: str, spec: BenchSpec) -> tuple[np.ndarray, int, dict]:
    """Parent-side trace prep for the shm transport.

    Returns ``(block indices as int64 array, instruction count, metric
    totals from trace generation)``.  The totals travel with the task so
    the merged payload is identical to the pickle path, where the same
    trace generation meters into the worker's own registry.
    """
    registry = MetricRegistry()
    with use_registry(registry):
        writebacks, instructions = _trace_writebacks(app, spec)
    blocks = np.asarray(writebacks, dtype=np.int64)
    return blocks, instructions, registry.snapshot().totals()


def run_app(
    app: str,
    spec: BenchSpec,
    prepared: tuple[Sequence[int], int] | None = None,
) -> tuple[dict, dict]:
    """Run one application; returns (app results, metric totals).

    ``prepared`` supplies ``(writebacks, instructions)`` from
    :func:`prepare_app` (shm transport); when absent the traces are
    generated here, under this app's registry (pickle transport).
    """
    registry = MetricRegistry()
    with use_registry(registry):
        if prepared is None:
            writebacks, instructions = _trace_writebacks(app, spec)
        else:
            writebacks, instructions = prepared
        region_bytes = spec.region_mb * 1024 * 1024

        config = preset(
            spec.preset,
            protected_bytes=region_bytes,
            keystream_mode=spec.keystream,
        )
        engine = SecureMemory(config, _app_key(app, spec.seed))
        batch = BatchSecureMemory(
            engine, mode=spec.mode, paranoid_sample=spec.paranoid_sample
        )

        payloads: dict[int, bytes] = {}
        for start in range(0, len(writebacks), FLUSH_CHUNK):
            chunk = writebacks[start : start + FLUSH_CHUNK]
            writes = []
            for offset, block in enumerate(chunk):
                block = int(block)
                data = _payload_for(app, spec.seed, block, start + offset)
                payloads[block] = data
                writes.append((block * BLOCK_BYTES, data))
            batch.write_many(writes)

        mismatches = 0
        written = sorted(payloads)
        for start in range(0, len(written), FLUSH_CHUNK):
            chunk = written[start : start + FLUSH_CHUNK]
            results = batch.read_many(
                [block * BLOCK_BYTES for block in chunk]
            )
            for block, result in zip(chunk, results):
                if result.data != payloads[block]:
                    mismatches += 1

        app_results = {
            "instructions": instructions,
            "writebacks": len(writebacks),
            "unique_blocks": len(written),
            "readback_mismatches": mismatches,
            "state_digest": state_digest(engine),
        }
    return app_results, registry.snapshot().totals()


def _worker(task: tuple) -> tuple:
    app, spec = task
    return app, run_app(app, spec)


def _worker_shm(task: tuple) -> tuple:
    """Pool worker for the shm transport: attach, view, run, close.

    The segment is attached read-only in spirit: the worker copies the
    block indices out of the numpy view and closes its mapping
    immediately, so the parent's ``unlink`` in ``run_bench`` is the only
    lifetime management the segment needs.
    """
    app, spec, shm_name, count, instructions, prep_totals = task
    segment = shared_memory.SharedMemory(name=shm_name)
    try:
        view = np.ndarray((count,), dtype=np.int64, buffer=segment.buf)
        writebacks = view.tolist()
    finally:
        segment.close()
    app_results, totals = run_app(
        app, spec, prepared=(writebacks, instructions)
    )
    return app, (app_results, merge_totals([prep_totals, totals]))


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _publish_segment(blocks: np.ndarray, app: str) -> shared_memory.SharedMemory:
    """Create one shm segment holding an app's block-index array."""
    name = f"{SHM_PREFIX}{os.getpid()}-{next(_SHM_SEQ)}-{app}"
    segment = shared_memory.SharedMemory(
        create=True, size=max(8, blocks.nbytes), name=name
    )
    view = np.ndarray(blocks.shape, dtype=np.int64, buffer=segment.buf)
    view[:] = blocks
    return segment


def run_bench(
    spec: BenchSpec, workers: int = 1, transport: str = "shm"
) -> dict:
    """Run every app in ``spec`` and merge into one payload.

    ``workers`` only chooses *where* apps run (inline vs a process
    pool) and ``transport`` only chooses *how* block batches reach
    them (shared-memory views vs pickled specs); neither may ever
    change the payload.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r} (choices: {TRANSPORTS})"
        )
    apps = sorted(spec.apps)

    if transport == "pickle":
        tasks = [(app, spec) for app in apps]
        if workers == 1:
            outcomes = [_worker(task) for task in tasks]
        else:
            with _pool_context().Pool(min(workers, len(tasks) or 1)) as pool:
                outcomes = pool.map(_worker, tasks)
    else:
        segments: list[shared_memory.SharedMemory] = []
        try:
            tasks = []
            for app in apps:
                blocks, instructions, prep_totals = prepare_app(app, spec)
                segment = _publish_segment(blocks, app)
                segments.append(segment)
                tasks.append(
                    (
                        app,
                        spec,
                        segment.name,
                        len(blocks),
                        instructions,
                        prep_totals,
                    )
                )
            if workers == 1:
                outcomes = [_worker_shm(task) for task in tasks]
            else:
                with _pool_context().Pool(
                    min(workers, len(tasks) or 1)
                ) as pool:
                    outcomes = pool.map(_worker_shm, tasks)
        finally:
            # The parent owns segment lifetime unconditionally: close
            # and unlink everything even when a worker died mid-run, so
            # crashes cannot leak /dev/shm entries.
            for segment in segments:
                segment.close()
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - paranoia
                    pass

    results = {}
    for app, (app_results, _) in sorted(outcomes):
        results[app] = app_results
    merged = merge_totals([totals for _, (_, totals) in sorted(outcomes)])
    return {
        "schema": BENCH_SCHEMA,
        "bench": "parallel",
        "config": spec.config_dict(),
        "results": results,
        "metrics": merged,
    }


def render_payload(payload: dict) -> str:
    """The canonical byte form every worker count must reproduce."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def dump_payload(payload: dict, path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(render_payload(payload))
    return path


__all__ = [
    "BENCH_SCHEMA",
    "BenchSpec",
    "SHM_PREFIX",
    "TRANSPORTS",
    "dump_payload",
    "merge_totals",
    "prepare_app",
    "render_payload",
    "run_app",
    "run_bench",
    "state_digest",
]
