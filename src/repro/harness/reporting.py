"""Plain-text table/series rendering in the style of the paper's exhibits.

Every benchmark prints its reproduction of a table or figure through
these helpers so outputs are uniform and diffable (EXPERIMENTS.md embeds
them verbatim).
"""

from __future__ import annotations


def format_table(title: str, headers: list, rows: list) -> str:
    """Render an aligned monospace table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("row width does not match headers")
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [
        max(len(row[i]) for row in cells) for i in range(columns)
    ]
    lines = [title, "=" * max(len(title), 1)]
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(cells[0]))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append(
            "  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                      for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(title: str, series: dict, unit: str = "") -> str:
    """Render named (label -> value) series, e.g. one Figure 8 bar group."""
    lines = [title, "=" * max(len(title), 1)]
    width = max((len(str(k)) for k in series), default=1)
    for label, value in series.items():
        lines.append(f"{str(label).ljust(width)}  {_fmt(value)}{unit}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


__all__ = ["format_table", "format_series"]
