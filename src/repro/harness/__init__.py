"""Experiment orchestration and paper-style reporting."""

from repro.harness.runner import (
    Figure8Run,
    PerformanceExperiment,
    ReencryptionExperiment,
    Table2Row,
    WritebackFilter,
)
from repro.harness.charts import bar, bar_chart, grouped_bar_chart
from repro.harness.reporting import format_table, format_series

__all__ = [
    "ReencryptionExperiment",
    "Table2Row",
    "PerformanceExperiment",
    "Figure8Run",
    "WritebackFilter",
    "format_table",
    "format_series",
    "bar",
    "bar_chart",
    "grouped_bar_chart",
]
