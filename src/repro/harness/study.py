"""Perf-study sweep: keystream x kernel-mode x workers x preset flavors.

``repro study`` answers "which configuration is fastest, and what does
each safety knob cost?" with one artifact.  It times the parallel bench
(:mod:`repro.harness.parallel`) once per *flavor* -- a point in the
``keystream backend x kernel mode x worker count x preset`` grid -- then
post-processes the raw timings into per-group comparisons (speedups
against the scalar ``reference`` backend, the ``aesni``-vs-``fast``
ratio the perf gate ratchets on, cross-backend state-digest agreement)
and emits everything as ``BENCH_study.json``.

Methodology (after the flavor-sweep study harnesses of perf-tools):

* **Timing runs are sequential.**  Flavors never race each other for
  cores, so the wall-clock numbers are comparable within one payload.
* **Post-processing is parallel.**  Summarizing a flavor (digest
  checks, metric extraction, ratio math) is independent per flavor, so
  it fans out over a process pool.
* **Correctness rides along.**  Every flavor's per-app state digests
  travel into the payload; AES-family backends (``reference`` /
  ``fast`` / ``aesni``) must agree bit-for-bit within a group, so a
  backend cannot "win" the sweep by computing the wrong ciphertext.

Mode tokens extend the kernel modes with sampled verification:
``"fast"``, ``"reference"``, ``"paranoid"`` run the kernel table as
named; ``"sampled:N"`` runs ``fast`` with ``paranoid_sample=N``.

Wall-clock numbers vary across hosts; like ``BENCH_perf.json``, the
committed ``BENCH_study.json`` is a recorded baseline, not a
byte-reproducible artifact.
"""

from __future__ import annotations

import json
import multiprocessing
import pathlib
import time
from dataclasses import dataclass, field

from repro.fast.backends import keystream_backends, resolve_backend
from repro.fast.kernels import MODES
from repro.harness.parallel import BenchSpec, run_bench

STUDY_SCHEMA = "repro.study/1"

#: default flavor grid: every backend, plain-fast plus sampled
#: verification, serial and sharded -- 16 flavors on one preset
DEFAULT_KEYSTREAMS = ("reference", "fast", "aesni", "splitmix")
DEFAULT_MODES = ("fast", "sampled:32")
DEFAULT_WORKERS = (1, 2)
DEFAULT_PRESETS = ("combined",)


def parse_mode_token(token: str) -> tuple[str, int]:
    """``"fast"|"reference"|"paranoid"|"sampled:N"`` -> (mode, sample)."""
    if token.startswith("sampled:"):
        sample = int(token.split(":", 1)[1])
        if sample < 1:
            raise ValueError(f"sampled:N needs N >= 1 (got {token!r})")
        return "fast", sample
    if token not in MODES:
        raise ValueError(
            f"unknown mode token {token!r} (choices: "
            f"{', '.join(MODES)}, sampled:N)"
        )
    return token, 0


@dataclass(frozen=True)
class Flavor:
    """One point in the sweep grid."""

    preset: str
    keystream: str
    mode_token: str
    workers: int

    @property
    def label(self) -> str:
        return (
            f"{self.preset}/{self.keystream}/{self.mode_token}"
            f"/w{self.workers}"
        )

    @property
    def group(self) -> str:
        """Comparison group: flavors differing only by keystream."""
        return f"{self.preset}/{self.mode_token}/w{self.workers}"

    def bench_spec(self, spec: "StudySpec") -> BenchSpec:
        mode, sample = parse_mode_token(self.mode_token)
        return BenchSpec(
            apps=spec.apps,
            mode=mode,
            accesses=spec.accesses,
            region_mb=spec.region_mb,
            cores=spec.cores,
            seed=spec.seed,
            preset=self.preset,
            keystream=self.keystream,
            paranoid_sample=sample,
        )


@dataclass(frozen=True)
class StudySpec:
    """The full sweep request."""

    apps: tuple = ("stream", "gups")
    accesses: int = 5_000
    region_mb: int = 4
    cores: int = 2
    seed: int = 1
    keystreams: tuple = DEFAULT_KEYSTREAMS
    modes: tuple = DEFAULT_MODES
    workers: tuple = DEFAULT_WORKERS
    presets: tuple = DEFAULT_PRESETS
    transport: str = "shm"

    def config_dict(self) -> dict:
        return {
            "apps": sorted(self.apps),
            "accesses": self.accesses,
            "region_mb": self.region_mb,
            "cores": self.cores,
            "seed": self.seed,
            "keystreams": list(self.keystreams),
            "modes": list(self.modes),
            "workers": list(self.workers),
            "presets": list(self.presets),
            "transport": self.transport,
        }

    def flavors(self) -> tuple[list[Flavor], dict[str, str]]:
        """Expand the grid; unavailable backends are skipped, with the
        reason recorded so the payload is honest about coverage."""
        skipped: dict[str, str] = {}
        out: list[Flavor] = []
        for name in self.keystreams:
            backend = resolve_backend(name)  # raises on unknown names
            error = backend.availability_error()
            if error is not None:
                skipped[name] = error
                continue
            for preset_name in self.presets:
                for token in self.modes:
                    parse_mode_token(token)  # validate before sweeping
                    for workers in self.workers:
                        out.append(
                            Flavor(
                                preset=preset_name,
                                keystream=name,
                                mode_token=token,
                                workers=workers,
                            )
                        )
        return out, skipped


def run_flavor(flavor: Flavor, spec: StudySpec) -> dict:
    """Time one flavor's bench run; returns the raw record."""
    bench_spec = flavor.bench_spec(spec)
    started = time.perf_counter()
    payload = run_bench(
        bench_spec, workers=flavor.workers, transport=spec.transport
    )
    elapsed = time.perf_counter() - started
    return {
        "flavor": {
            "preset": flavor.preset,
            "keystream": flavor.keystream,
            "mode": flavor.mode_token,
            "workers": flavor.workers,
        },
        "label": flavor.label,
        "group": flavor.group,
        "family": resolve_backend(flavor.keystream).family,
        "elapsed_seconds": elapsed,
        "payload": payload,
    }


def summarize_flavor(raw: dict) -> dict:
    """Post-process one raw flavor record into its payload summary.

    Pure function of the record (no shared state), so ``run_study``
    fans these out over a process pool.
    """
    payload = raw["payload"]
    results = payload["results"]
    metrics = payload["metrics"]
    writebacks = sum(app["writebacks"] for app in results.values())
    mismatches = sum(app["readback_mismatches"] for app in results.values())
    elapsed = raw["elapsed_seconds"]
    return {
        **raw["flavor"],
        "family": raw["family"],
        "group": raw["group"],
        "elapsed_seconds": round(elapsed, 4),
        "writebacks": writebacks,
        "blocks_per_second": round(writebacks / elapsed, 1) if elapsed else 0.0,
        "readback_mismatches": mismatches,
        "state_digests": {
            app: results[app]["state_digest"] for app in sorted(results)
        },
        "paranoid": {
            name.rsplit(".", 1)[1]: metrics[name]
            for name in sorted(metrics)
            if name.startswith("fast.paranoid.")
        },
    }


def _compare_groups(flavors: dict[str, dict]) -> dict:
    """Per-group cross-backend comparison (speedups + digest agreement)."""
    groups: dict[str, dict[str, dict]] = {}
    for summary in flavors.values():
        groups.setdefault(summary["group"], {})[summary["keystream"]] = summary
    comparisons: dict[str, dict] = {}
    for group, by_keystream in sorted(groups.items()):
        entry: dict = {"keystreams": sorted(by_keystream)}
        reference = by_keystream.get("reference")
        if reference is not None:
            entry["speedup_vs_reference"] = {
                name: round(
                    reference["elapsed_seconds"]
                    / summary["elapsed_seconds"],
                    2,
                )
                for name, summary in sorted(by_keystream.items())
                if summary["elapsed_seconds"]
            }
        fast = by_keystream.get("fast")
        aesni = by_keystream.get("aesni")
        if fast is not None and aesni is not None and aesni["elapsed_seconds"]:
            entry["aesni_vs_fast"] = round(
                fast["elapsed_seconds"] / aesni["elapsed_seconds"], 2
            )
        # AES-family backends run the same construction: their engine
        # end states must be bit-identical per app.
        aes_family = [
            summary
            for summary in by_keystream.values()
            if summary["family"] == "aes"
        ]
        if aes_family:
            digests = {
                json.dumps(summary["state_digests"], sort_keys=True)
                for summary in aes_family
            }
            entry["aes_family_digest_agreement"] = len(digests) == 1
        comparisons[group] = entry
    return comparisons


def run_study(spec: StudySpec, jobs: int | None = None) -> dict:
    """Run the sweep: sequential timing, parallel post-processing."""
    flavor_list, skipped = spec.flavors()
    raw_records = [run_flavor(flavor, spec) for flavor in flavor_list]

    if jobs is None:
        jobs = min(4, multiprocessing.cpu_count())
    if jobs > 1 and len(raw_records) > 1:
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        with context.Pool(min(jobs, len(raw_records))) as pool:
            summaries = pool.map(summarize_flavor, raw_records)
    else:
        summaries = [summarize_flavor(raw) for raw in raw_records]

    flavors = {
        raw["label"]: summary
        for raw, summary in zip(raw_records, summaries)
    }
    comparisons = _compare_groups(flavors)
    agreement = all(
        entry.get("aes_family_digest_agreement", True)
        for entry in comparisons.values()
    )
    mismatches = sum(
        summary["readback_mismatches"] for summary in flavors.values()
    )
    return {
        "schema": STUDY_SCHEMA,
        "bench": "study",
        "config": spec.config_dict(),
        "flavors": flavors,
        "comparisons": comparisons,
        "skipped_backends": skipped,
        "summary": {
            "flavors": len(flavors),
            "keystreams_available": [
                name
                for name in keystream_backends()
                if name in spec.keystreams and name not in skipped
            ],
            "readback_mismatches": mismatches,
            "aes_family_digest_agreement": agreement,
        },
    }


def render_study(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def dump_study(payload: dict, path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(render_study(payload))
    return path


__all__ = [
    "STUDY_SCHEMA",
    "Flavor",
    "StudySpec",
    "dump_study",
    "parse_mode_token",
    "render_study",
    "run_flavor",
    "run_study",
    "summarize_flavor",
]
