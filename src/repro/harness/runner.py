"""Experiment runners for the paper's two headline experiments.

* :class:`ReencryptionExperiment` reproduces Table 2: per application,
  count block-group re-encryptions per 10^9 cycles for split counters,
  7-bit deltas and dual-length deltas.  The write stream is filtered
  through a write-back cache model (the LLC coalesces repeated stores to
  a resident line into one eventual DRAM write-back) and then replayed
  into each counter scheme; the *same* filtered stream drives all
  schemes, exactly as one simulated execution drives all three columns
  in the paper.
* :class:`PerformanceExperiment` reproduces Figure 8: run the trace-
  driven multicore system against the plain-DRAM backend and each
  encryption configuration, reporting IPC normalized to no encryption.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field

from repro.core.counters import make_scheme
from repro.core.engine.config import EngineConfig, preset
from repro.core.engine.timing import EncryptionTimingBackend
from repro.memsim.cache.cache import AccessType, Cache, CacheConfig
from repro.memsim.cpu.system import (
    PlainMemoryBackend,
    TraceDrivenSystem,
)
from repro.obs.metrics import MetricRegistry, use_registry
from repro.obs.trace import EventTracer, get_tracer, use_tracer
from repro.workloads.parsec import ParsecProfile, profile

BLOCK_BYTES = 64


def _observed(registry: MetricRegistry | None, tracer: EventTracer | None):
    """Scope an experiment's registry/tracer (no-op when neither is set).

    Components built inside (caches, DRAM, schemes, engines) bind their
    metrics to the experiment's registry instead of the process default,
    so one run's snapshot contains exactly that run.
    """
    stack = ExitStack()
    if registry is not None:
        stack.enter_context(use_registry(registry))
    if tracer is not None:
        stack.enter_context(use_tracer(tracer))
    return stack


class WritebackFilter:
    """LLC write-coalescing model: turns a raw access stream into the
    DRAM write-back stream that actually bumps encryption counters.

    A single shared cache stands in for the whole hierarchy -- adequate
    because only the *write-back* stream matters here and the L3
    dominates coalescing.  Reads participate (they create eviction
    pressure); dirty victims are emitted as write-backs.
    """

    #: default filter capacity: the 10 MB LLC of Table 1 scaled by the
    #: same ~10x spatial factor as the workload footprints (see
    #: repro.workloads.parsec docstring, "Scaling").
    DEFAULT_CONFIG = CacheConfig(size_bytes=128 * 1024, ways=16)

    def __init__(self, cache_config: CacheConfig | None = None):
        self.cache = Cache(cache_config or self.DEFAULT_CONFIG, "llc-filter")

    def filter(self, traces: list) -> list:
        """Interleave per-core traces round-robin; return write-back
        block indices in eviction order, plus the instruction total."""
        writebacks = []
        instructions = 0
        iterators = [iter(t) for t in traces]
        live = list(range(len(iterators)))
        while live:
            finished = []
            for slot in live:
                record = next(iterators[slot], None)
                if record is None:
                    finished.append(slot)
                    continue
                gap, is_write, address = record
                instructions += gap + 1
                result = self.cache.access(
                    address,
                    AccessType.WRITE if is_write else AccessType.READ,
                )
                if result.writeback_address is not None:
                    writebacks.append(result.writeback_address // BLOCK_BYTES)
            for slot in finished:
                live.remove(slot)
        return writebacks, instructions


@dataclass
class Table2Row:
    """Re-encryption counts per 10^9 cycles for one application."""

    app: str
    split: float
    delta7: float
    dual_length: float
    simulated_cycles: float
    raw_counts: dict = field(default_factory=dict)

    def as_row(self) -> list:
        return [
            self.app,
            round(self.split, 1),
            round(self.delta7, 1),
            round(self.dual_length, 1),
        ]


class ReencryptionExperiment:
    """Table 2: re-encryptions per billion cycles, three counter schemes."""

    #: the three columns of Table 2 and how to build them
    SCHEMES = {
        "split": lambda blocks: make_scheme("split", blocks),
        "delta7": lambda blocks: make_scheme("delta", blocks),
        "dual_length": lambda blocks: make_scheme("dual_length", blocks),
    }

    def __init__(
        self,
        region_bytes: int = 32 * 1024 * 1024,
        accesses_per_core: int = 600_000,
        cores: int = 4,
        seed: int = 1,
        filter_config: CacheConfig | None = None,
        registry: MetricRegistry | None = None,
        tracer: EventTracer | None = None,
    ):
        self.region_bytes = region_bytes
        self.accesses_per_core = accesses_per_core
        self.cores = cores
        self.seed = seed
        self.filter_config = filter_config
        self.registry = registry
        self.tracer = tracer

    def run_app(self, app: str | ParsecProfile) -> Table2Row:
        """Run one application through all three counter schemes."""
        with _observed(self.registry, self.tracer):
            return self._run_app(app)

    def _run_app(self, app: str | ParsecProfile) -> Table2Row:
        app_profile = profile(app) if isinstance(app, str) else app
        region_blocks = self.region_bytes // BLOCK_BYTES
        traces = app_profile.traces(
            self.accesses_per_core, region_blocks, self.cores, self.seed
        )
        writebacks, instructions = WritebackFilter(
            self.filter_config
        ).filter(traces)
        # Four cores retire in parallel: wall-clock cycles are one core's
        # instruction share at the application's nominal IPC.
        cycles = instructions / self.cores / app_profile.base_ipc
        scale = 1e9 / cycles if cycles else 0.0

        counts = {}
        for name, builder in self.SCHEMES.items():
            scheme = builder(region_blocks)
            for block in writebacks:
                scheme.on_write(block)
            counts[name] = scheme.stats.re_encryptions
        return Table2Row(
            app=app_profile.name,
            split=counts["split"] * scale,
            delta7=counts["delta7"] * scale,
            dual_length=counts["dual_length"] * scale,
            simulated_cycles=cycles,
            raw_counts=counts,
        )

    def run(self, apps: list) -> list:
        """Run several applications; returns one Table2Row each."""
        return [self.run_app(app) for app in apps]


@dataclass
class Figure8Run:
    """IPC results for one application across configurations."""

    app: str
    plain_ipc: float
    ipc: dict  # config name -> absolute IPC

    def normalized(self) -> dict:
        """IPC relative to no encryption (the Figure 8 y-axis)."""
        if not self.plain_ipc:
            return {name: 0.0 for name in self.ipc}
        return {name: v / self.plain_ipc for name, v in self.ipc.items()}

    def improvement_over_baseline(self, config: str = "combined",
                                  baseline: str = "bmt_baseline") -> float:
        """Relative IPC gain of a config over the BMT baseline."""
        if not self.ipc.get(baseline):
            return 0.0
        return self.ipc[config] / self.ipc[baseline] - 1.0


class PerformanceExperiment:
    """Figure 8: normalized IPC of the four engine configurations."""

    DEFAULT_CONFIGS = ("bmt_baseline", "mac_in_ecc", "delta_only", "combined")

    def __init__(
        self,
        region_bytes: int = 128 * 1024 * 1024,
        accesses_per_core: int = 120_000,
        cores: int = 4,
        seed: int = 1,
        configs: tuple = DEFAULT_CONFIGS,
        registry: MetricRegistry | None = None,
        tracer: EventTracer | None = None,
    ):
        self.region_bytes = region_bytes
        self.accesses_per_core = accesses_per_core
        self.cores = cores
        self.seed = seed
        self.configs = configs
        self.registry = registry
        self.tracer = tracer

    def _engine_config(self, name: str) -> EngineConfig:
        return preset(name, protected_bytes=self.region_bytes)

    def run_app(self, app: str | ParsecProfile) -> Figure8Run:
        """Simulate one application under every configuration."""
        with _observed(self.registry, self.tracer):
            return self._run_app(app)

    def _run_app(self, app: str | ParsecProfile) -> Figure8Run:
        app_profile = profile(app) if isinstance(app, str) else app
        region_blocks = self.region_bytes // BLOCK_BYTES
        traces = app_profile.traces(
            self.accesses_per_core, region_blocks, self.cores, self.seed
        )
        plain = TraceDrivenSystem(PlainMemoryBackend())
        plain_result = plain.run([list(t) for t in traces])

        tracer = get_tracer()
        results = {}
        for name in self.configs:
            if tracer.enabled:
                tracer.instant(
                    f"config.{name}", cat="harness", app=app_profile.name
                )
            backend = EncryptionTimingBackend(self._engine_config(name))
            system = TraceDrivenSystem(backend)
            results[name] = system.run([list(t) for t in traces]).ipc
        return Figure8Run(
            app=app_profile.name, plain_ipc=plain_result.ipc, ipc=results
        )

    def run(self, apps: list) -> list:
        return [self.run_app(app) for app in apps]


__all__ = [
    "WritebackFilter",
    "ReencryptionExperiment",
    "Table2Row",
    "PerformanceExperiment",
    "Figure8Run",
]
