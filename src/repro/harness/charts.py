"""ASCII bar charts for figure-style exhibits.

Figure 8 is a grouped bar chart in the paper; rendering the reproduction
the same way (in plain text, so it lives in terminals, logs and
EXPERIMENTS.md) makes the comparison legible at a glance.  No plotting
dependency required.
"""

from __future__ import annotations

FULL = "#"
EMPTY = " "


def bar(value: float, maximum: float, width: int = 40) -> str:
    """One horizontal bar scaled to ``maximum``."""
    if maximum <= 0:
        raise ValueError("maximum must be positive")
    if width <= 0:
        raise ValueError("width must be positive")
    clamped = max(0.0, min(value, maximum))
    filled = round(width * clamped / maximum)
    return FULL * filled + EMPTY * (width - filled)


def bar_chart(
    title: str,
    series: dict,
    maximum: float | None = None,
    width: int = 40,
    value_format: str = "{:.3f}",
) -> str:
    """A labelled horizontal bar chart from {label: value}."""
    if not series:
        raise ValueError("series must not be empty")
    peak = maximum if maximum is not None else max(series.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(label)) for label in series)
    lines = [title, "=" * max(len(title), 1)]
    for label, value in series.items():
        rendered = value_format.format(value)
        lines.append(
            f"{str(label).ljust(label_width)} |{bar(value, peak, width)}| "
            f"{rendered}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    title: str,
    groups: dict,
    maximum: float | None = None,
    width: int = 32,
    value_format: str = "{:.3f}",
) -> str:
    """Grouped bars: {group: {series: value}} -- the Figure 8 shape."""
    if not groups:
        raise ValueError("groups must not be empty")
    all_values = [
        value for series in groups.values() for value in series.values()
    ]
    peak = maximum if maximum is not None else max(all_values)
    if peak <= 0:
        peak = 1.0
    series_width = max(
        len(str(name))
        for series in groups.values()
        for name in series
    )
    lines = [title, "=" * max(len(title), 1)]
    for group, series in groups.items():
        lines.append(f"{group}:")
        for name, value in series.items():
            rendered = value_format.format(value)
            lines.append(
                f"  {str(name).ljust(series_width)} "
                f"|{bar(value, peak, width)}| {rendered}"
            )
    return "\n".join(lines)


__all__ = ["bar", "bar_chart", "grouped_bar_chart"]
