"""DRAM + crypto energy model (the paper's efficiency claim, §4.1/§2.2).

"The optimizations we present below reduce the rate of re-encryption,
which in turn limits non-volatile main memory aging ... and also results
in better energy efficiency."

This module quantifies that: per-operation energy constants (DDR3-class
values from the Micron power model, crypto-engine values from published
AES/GHASH accelerator numbers) applied to measured traffic counts.  The
comparison of interest is *per configuration*: MAC-in-ECC removes one
DRAM transaction per miss; delta encoding removes tree levels and counter
fetches; both remove re-encryption sweeps -- all directly visible as
picojoules.

Absolute constants are order-of-magnitude (they vary by part and node);
the asserted quantity is the configuration *ordering*, which depends only
on the traffic ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim.dram.system import DramStats

BLOCK_BYTES = 64


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy constants, in picojoules.

    DRAM numbers approximate a DDR3-1600 x8 device set (activate+
    precharge pair, and the per-64-byte burst including I/O); crypto
    numbers approximate pipelined hardware engines at 45 nm -- the
    technology of the paper's synthesis.
    """

    activate_pj: float = 2500.0  # ACT+PRE pair, whole rank
    burst_read_pj: float = 5200.0  # 64-byte read burst incl. I/O
    burst_write_pj: float = 5600.0  # 64-byte write burst incl. I/O
    refresh_pj: float = 9000.0  # one all-bank refresh
    aes_block_pj: float = 25.0  # one AES-128 block (4 per 64 B)
    gf_mac_pj: float = 8.0  # one Carter-Wegman tag evaluation
    hamming_pj: float = 0.5  # one SEC-DED encode/decode

    def dram_energy(self, stats: DramStats) -> float:
        """Energy of a measured DRAM traffic mix, in picojoules."""
        activates = stats.row_closed + stats.row_conflicts
        return (
            activates * self.activate_pj
            + stats.reads * self.burst_read_pj
            + stats.writes * self.burst_write_pj
            + stats.refresh_stalls * self.refresh_pj
        )

    def crypto_energy(
        self,
        blocks_processed: int,
        mac_evaluations: int | None = None,
        hamming_ops: int = 0,
    ) -> float:
        """Energy of the encryption engine's work.

        Each 64-byte block needs four AES blocks of keystream and (by
        default) one MAC evaluation.
        """
        if mac_evaluations is None:
            mac_evaluations = blocks_processed
        return (
            blocks_processed * 4 * self.aes_block_pj
            + mac_evaluations * self.gf_mac_pj
            + hamming_ops * self.hamming_pj
        )

    def reencryption_energy(self, reencrypted_blocks: int) -> float:
        """A re-encrypted block is read, decrypted, re-encrypted and
        written back: two bursts + two crypto passes."""
        dram = reencrypted_blocks * (
            self.burst_read_pj + self.burst_write_pj
        )
        crypto = 2 * self.crypto_energy(reencrypted_blocks)
        return dram + crypto


@dataclass(frozen=True)
class EnergyBreakdown:
    """Total energy of one simulated configuration."""

    name: str
    dram_pj: float
    crypto_pj: float
    reencryption_pj: float

    @property
    def total_pj(self) -> float:
        return self.dram_pj + self.crypto_pj + self.reencryption_pj

    def per_access_nj(self, accesses: int) -> float:
        """Nanojoules per demand access (for cross-run comparison)."""
        if accesses <= 0:
            raise ValueError("accesses must be positive")
        return self.total_pj / accesses / 1000.0


def measure_backend_energy(name: str, backend,
                           model: EnergyModel | None = None) -> EnergyBreakdown:
    """Energy of one :class:`EncryptionTimingBackend` run.

    Crypto work: one keystream + MAC per demand read and write; Hamming
    ops on MAC-in-ECC configurations (encode on write, decode on read).
    Re-encryption energy from the scheme's event counts.
    """
    model = model or EnergyModel()
    stats = backend.stats
    demand = stats.demand_reads + stats.demand_writes
    hamming = demand if backend.config.mac_in_ecc else 0
    reencrypted = (
        backend.scheme.stats.re_encryptions
        * backend.scheme.blocks_per_group
    )
    return EnergyBreakdown(
        name=name,
        dram_pj=model.dram_energy(backend.dram.stats),
        crypto_pj=model.crypto_energy(demand, hamming_ops=hamming),
        reencryption_pj=model.reencryption_energy(reencrypted),
    )


__all__ = ["EnergyModel", "EnergyBreakdown", "measure_backend_energy"]
