"""Scripted attack scenarios against a :class:`~repro.SecureMemory`.

The paper's threat model (Section 2): an attacker with physical access
can monitor buses, dump DIMM contents, and rewrite any off-chip state --
ciphertexts, MACs/ECC bits, counter storage, interior tree nodes -- but
cannot touch on-chip state (keys, the tree's top level) or break the
cryptography.  This module enumerates concrete attacks within that model
and reports whether the engine defends against each; the security test
suite asserts a clean sweep, and the harness makes the same check easy
to run against custom configurations.

Each scenario returns an :class:`AttackResult`; ``defended`` means the
engine either raised an :class:`~repro.core.engine.secure_memory.
IntegrityError` or returned data the attack did not influence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.engine.secure_memory import IntegrityError, SecureMemory

BLOCK_BYTES = 64


@dataclass(frozen=True)
class AttackResult:
    """Outcome of one scripted attack."""

    name: str
    defended: bool
    detail: str


def _attack(memory, name, address, mutate, expected_kinds):
    """Run one mutate-then-read attack; classify the outcome."""
    mutate()
    try:
        result = memory.read(address)
    except IntegrityError as error:
        ok = error.kind in expected_kinds
        return AttackResult(
            name,
            defended=ok,
            detail=f"rejected (kind={error.kind})"
            if ok
            else f"rejected with unexpected kind={error.kind}",
        )
    return AttackResult(
        name,
        defended=False,
        detail=f"read returned {result.data[:8].hex()}... without detection",
    )


def ciphertext_tamper(memory: SecureMemory, address: int = 0,
                      seed: int = 1) -> AttackResult:
    """Flip a burst of ciphertext bits (targeted data corruption)."""
    rng = random.Random(seed)
    memory.write(address, bytes(rng.randrange(256) for _ in range(64)))
    positions = rng.sample(range(512), 24)
    return _attack(
        memory,
        "ciphertext tamper (24 bits)",
        address,
        lambda: memory.flip_data_bits(address, positions),
        expected_kinds={"mac"},
    )


def ciphertext_and_mac_forgery(memory: SecureMemory, address: int = 0,
                               seed: int = 2) -> AttackResult:
    """Replace the ciphertext *and* write a guessed MAC for it."""
    rng = random.Random(seed)
    memory.write(address, bytes(rng.randrange(256) for _ in range(64)))
    block = address // BLOCK_BYTES

    def mutate():
        forged_ct = bytes(rng.randrange(256) for _ in range(64))
        memory.ciphertexts[block] = forged_ct
        if memory.config.mac_in_ecc:
            from repro.core.ecc_mac.layout import EccField

            guess = rng.getrandbits(56)
            field = EccField(
                mac=guess,
                mac_check=memory.codec.mac_hamming.encode(guess),
                ct_parity=0,
            )
            memory.ecc_fields[block] = field
        else:
            memory.mac_store[block] = rng.getrandbits(56)

    return _attack(
        memory,
        "ciphertext + forged MAC",
        address,
        mutate,
        expected_kinds={"mac"},
    )


def replay_block(memory: SecureMemory, address: int = 0,
                 seed: int = 3) -> AttackResult:
    """Full consistent rollback of data + MAC + counter storage."""
    rng = random.Random(seed)
    memory.write(address, bytes(rng.randrange(256) for _ in range(64)))
    snapshot = memory.snapshot_block(address)
    memory.write(address, bytes(rng.randrange(256) for _ in range(64)))
    return _attack(
        memory,
        "replay (data+MAC+counter rollback)",
        address,
        lambda: memory.rollback_block(address, snapshot),
        expected_kinds={"tree"},
    )


def counter_manipulation(memory: SecureMemory, address: int = 0,
                         seed: int = 4) -> AttackResult:
    """Rewrite the counter metadata block (e.g. to force nonce reuse)."""
    rng = random.Random(seed)
    memory.write(address, bytes(rng.randrange(256) for _ in range(64)))
    group = memory.scheme.group_of(address // BLOCK_BYTES)
    metadata = bytearray(memory.counter_storage[group])
    metadata[rng.randrange(len(metadata))] ^= 0xFF

    return _attack(
        memory,
        "counter-storage manipulation",
        address,
        lambda: memory.corrupt_counter_storage(group, bytes(metadata)),
        expected_kinds={"tree"},
    )


def tree_node_grafting(memory: SecureMemory, address: int = 0,
                       seed: int = 5) -> AttackResult:
    """Overwrite an interior tree node with another node's content."""
    rng = random.Random(seed)
    memory.write(address, bytes(rng.randrange(256) for _ in range(64)))
    if not memory.tree.offchip:
        return AttackResult(
            "tree-node grafting",
            defended=True,
            detail="skipped: tree too small for off-chip nodes",
        )
    keys = sorted(memory.tree.offchip)
    target = keys[0]
    donor = keys[-1]

    def mutate():
        memory.tree.offchip[target] = memory.tree.offchip[donor]

    return _attack(
        memory,
        "tree-node grafting",
        address,
        mutate,
        expected_kinds={"tree"},
    )


def block_relocation(memory: SecureMemory, seed: int = 6) -> AttackResult:
    """Move a valid (ciphertext, MAC) pair to a different address."""
    rng = random.Random(seed)
    source, target = 0, BLOCK_BYTES
    memory.write(source, bytes(rng.randrange(256) for _ in range(64)))
    memory.write(target, bytes(rng.randrange(256) for _ in range(64)))

    def mutate():
        memory.ciphertexts[target // BLOCK_BYTES] = memory.ciphertexts[
            source // BLOCK_BYTES
        ]
        if memory.config.mac_in_ecc:
            memory.ecc_fields[target // BLOCK_BYTES] = memory.ecc_fields[
                source // BLOCK_BYTES
            ]
        else:
            memory.mac_store[target // BLOCK_BYTES] = memory.mac_store[
                source // BLOCK_BYTES
            ]

    return _attack(
        memory,
        "block relocation",
        target,
        mutate,
        expected_kinds={"mac"},
    )


ALL_ATTACKS = (
    ciphertext_tamper,
    ciphertext_and_mac_forgery,
    replay_block,
    counter_manipulation,
    tree_node_grafting,
    block_relocation,
)


def run_all(memory_factory) -> list:
    """Run every scripted attack, each against a *fresh* memory.

    ``memory_factory`` is a zero-argument callable returning a configured
    :class:`SecureMemory`.
    """
    return [attack(memory_factory()) for attack in ALL_ATTACKS]


__all__ = [
    "AttackResult",
    "ciphertext_tamper",
    "ciphertext_and_mac_forgery",
    "replay_block",
    "counter_manipulation",
    "tree_node_grafting",
    "block_relocation",
    "ALL_ATTACKS",
    "run_all",
]
