"""Fault-pattern matrix: conventional SEC-DED vs MAC-based ECC (Figure 3).

The paper's Figure 3 compares how the two schemes fare under different
numbers and placements of bit flips.  This module reproduces the
comparison *empirically*: it injects each fault pattern into real encoded
blocks and reports what each scheme actually does, rather than quoting
the expected outcomes.

Outcomes:

* ``CORRECTED``     -- the scheme returned the original data
* ``DETECTED``      -- flagged uncorrectable, data not silently wrong
* ``MISCORRECTED``  -- the scheme "fixed" the block into *wrong* data
  without flagging (SEC-DED's >2-flips-per-word failure mode)
* ``UNDETECTED``    -- wrong data passed the check silently

Scenario expectations (what Figure 3 illustrates):

====================================  ==============  ===================
fault pattern                         SEC-DED          MAC-based ECC
====================================  ==============  ===================
1 flip in one word                    corrected        corrected
2 flips in one word                   detected only    corrected
2 flips in different words            corrected        corrected
up to 16 flips, <=2 per word          detected         detected
3 flips in one word                   *miscorrect*     detected
1 flip in stored MAC/ECC bits         corrected        corrected
====================================  ==============  ===================
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.core.ecc_mac.correction import FlipAndCheckCorrector
from repro.core.ecc_mac.detection import CheckOutcome, check_block
from repro.core.ecc_mac.layout import MacEccCodec
from repro.crypto.mac import CarterWegmanMac
from repro.ecc.secded import BlockSecDed

BLOCK_BYTES = 64
BLOCK_BITS = 512
WORD_BITS = 64


class FaultOutcome(enum.Enum):
    CORRECTED = "corrected"
    DETECTED = "detected"
    MISCORRECTED = "miscorrected"
    UNDETECTED = "undetected"


@dataclass(frozen=True)
class FaultScenario:
    """A named fault pattern: a function drawing bit positions to flip.

    ``data_bits(rng)`` returns positions in the 512 data bits;
    ``ecc_bits(rng)`` returns positions in the 64 stored ECC bits.
    """

    name: str
    description: str
    data_bits: object = field(repr=False)
    ecc_bits: object = field(repr=False, default=None)

    def draw(self, rng: random.Random) -> tuple:
        data = tuple(self.data_bits(rng)) if self.data_bits else ()
        ecc = tuple(self.ecc_bits(rng)) if self.ecc_bits else ()
        return data, ecc


def _one_flip(rng):
    return [rng.randrange(BLOCK_BITS)]


def _two_flips_same_word(rng):
    word = rng.randrange(BLOCK_BITS // WORD_BITS)
    first, second = rng.sample(range(WORD_BITS), 2)
    return [word * WORD_BITS + first, word * WORD_BITS + second]


def _two_flips_different_words(rng):
    word_a, word_b = rng.sample(range(BLOCK_BITS // WORD_BITS), 2)
    return [
        word_a * WORD_BITS + rng.randrange(WORD_BITS),
        word_b * WORD_BITS + rng.randrange(WORD_BITS),
    ]


def _sixteen_flips_spread(rng):
    # Two flips in every one of the 8 words: SEC-DED detects all (2/word
    # is its detection limit); MAC detects but cannot correct (>2 total).
    positions = []
    for word in range(8):
        for bit in rng.sample(range(WORD_BITS), 2):
            positions.append(word * WORD_BITS + bit)
    return positions


def _three_flips_same_word(rng):
    word = rng.randrange(BLOCK_BITS // WORD_BITS)
    return [word * WORD_BITS + b for b in rng.sample(range(WORD_BITS), 3)]


def _one_ecc_flip(rng):
    # Flip inside the 56 stored MAC bits (the Hamming-protected field).
    return [rng.randrange(56)]


def figure3_scenarios() -> list:
    """The fault patterns of Figure 3."""
    return [
        FaultScenario(
            "single-bit",
            "1 flip in one 8-byte word",
            _one_flip,
        ),
        FaultScenario(
            "double-bit-same-word",
            "2 flips inside one 8-byte word",
            _two_flips_same_word,
        ),
        FaultScenario(
            "double-bit-two-words",
            "2 flips in different 8-byte words",
            _two_flips_different_words,
        ),
        FaultScenario(
            "sixteen-bit-spread",
            "16 flips, exactly 2 per 8-byte word",
            _sixteen_flips_spread,
        ),
        FaultScenario(
            "triple-bit-same-word",
            "3 flips inside one 8-byte word",
            _three_flips_same_word,
        ),
        FaultScenario(
            "mac-bit-flip",
            "1 flip in the stored MAC/ECC field",
            None,
            _one_ecc_flip,
        ),
    ]


@dataclass
class FaultMatrix:
    """Outcome counts: scenario -> scheme -> FaultOutcome -> count."""

    trials: int
    results: dict = field(default_factory=dict)

    def record(self, scenario: str, scheme: str, outcome: FaultOutcome):
        per_scheme = self.results.setdefault(scenario, {})
        per_outcome = per_scheme.setdefault(scheme, {})
        per_outcome[outcome] = per_outcome.get(outcome, 0) + 1

    def dominant(self, scenario: str, scheme: str) -> FaultOutcome:
        """Most frequent outcome for a (scenario, scheme) pair."""
        counts = self.results[scenario][scheme]
        return max(counts, key=counts.get)


def _flip_bits(data: bytes, positions) -> bytes:
    out = bytearray(data)
    for position in positions:
        out[position >> 3] ^= 1 << (position & 7)
    return bytes(out)


def _run_secded(secded: BlockSecDed, data: bytes, data_flips,
                ecc_flips) -> FaultOutcome:
    checks = secded.encode_block(data)
    corrupted = _flip_bits(data, data_flips)
    corrupted_checks = _flip_bits(checks, ecc_flips)
    result = secded.decode_block(corrupted, corrupted_checks)
    if result.detected:
        return FaultOutcome.DETECTED
    if result.data == data:
        return FaultOutcome.CORRECTED
    if result.corrected_bits:
        return FaultOutcome.MISCORRECTED
    return FaultOutcome.UNDETECTED


def _run_mac_ecc(codec: MacEccCodec, corrector: FlipAndCheckCorrector,
                 data: bytes, address: int, counter: int, data_flips,
                 ecc_flips) -> FaultOutcome:
    clean_field = codec.build(data, address, counter)
    corrupted = _flip_bits(data, data_flips)
    field = clean_field
    for position in ecc_flips:
        field = field.flip_bit(position)
    result = check_block(codec, corrupted, field, address, counter)
    if result.outcome is CheckOutcome.MAC_UNCORRECTABLE:
        return FaultOutcome.DETECTED
    if result.ok:
        if corrupted == data:
            return FaultOutcome.CORRECTED
        return FaultOutcome.UNDETECTED  # MAC collision (2^-56)
    correction = corrector.correct(
        corrupted, address, counter, result.recovered_mac
    )
    if not correction.corrected:
        return FaultOutcome.DETECTED
    if correction.data == data:
        return FaultOutcome.CORRECTED
    return FaultOutcome.MISCORRECTED


def run_fault_matrix(
    trials: int = 20,
    seed: int = 7,
    scenarios: list | None = None,
) -> FaultMatrix:
    """Inject each scenario ``trials`` times into both schemes."""
    rng = random.Random(seed)
    secded = BlockSecDed()
    mac = CarterWegmanMac(bytes(range(24)), mode="fast")
    codec = MacEccCodec(mac)
    corrector = FlipAndCheckCorrector(mac)
    matrix = FaultMatrix(trials=trials)
    for scenario in scenarios or figure3_scenarios():
        for trial in range(trials):
            data = bytes(rng.randrange(256) for _ in range(BLOCK_BYTES))
            address = rng.randrange(1 << 20) * BLOCK_BYTES
            counter = rng.randrange(1 << 20)
            data_flips, ecc_flips = scenario.draw(rng)
            matrix.record(
                scenario.name,
                "secded",
                _run_secded(secded, data, data_flips, ecc_flips),
            )
            matrix.record(
                scenario.name,
                "mac_ecc",
                _run_mac_ecc(
                    codec, corrector, data, address, counter,
                    data_flips, ecc_flips,
                ),
            )
    return matrix


__all__ = [
    "FaultOutcome",
    "FaultScenario",
    "FaultMatrix",
    "figure3_scenarios",
    "run_fault_matrix",
]
