"""Non-volatile main-memory wear model (paper Section 2.2).

"Encrypting data in an NVMM can result in faster storage media wear out.
Frequent re-encryption of memory blocks that result from overflowing
counters will exacerbate this problem.  The delta encoding scheme we
present in this work will reduce potential storage media wear out..."

This module turns that argument into numbers: given a demand write-back
stream and a counter scheme, it computes the *write amplification*
(total physical writes / demand writes, where every block-group
re-encryption rewrites the whole group) and projects device lifetime for
an endurance-limited technology.

The lifetime projection is a standard first-order model: uniform wear
levelling over the device, cells rated for ``endurance_cycles`` writes.
It deliberately ignores intra-group wear imbalance (levelling hardware
handles that) -- the quantity the paper argues about is the total write
volume multiplier, which this captures exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.counters import CounterScheme, make_scheme

BLOCK_BYTES = 64


@dataclass(frozen=True)
class WearReport:
    """Write-amplification outcome for one (stream, scheme) pairing."""

    scheme: str
    demand_writes: int
    re_encryptions: int
    blocks_per_group: int

    @property
    def reencryption_writes(self) -> int:
        """Extra block writes caused by group re-encryption."""
        return self.re_encryptions * self.blocks_per_group

    @property
    def total_writes(self) -> int:
        return self.demand_writes + self.reencryption_writes

    @property
    def amplification(self) -> float:
        """Physical writes per demand write (>= 1.0)."""
        if not self.demand_writes:
            return 1.0
        return self.total_writes / self.demand_writes

    def lifetime_years(
        self,
        device_bytes: int,
        endurance_cycles: int = 10**7,
        demand_write_bandwidth: float = 1e9,
    ) -> float:
        """Projected device lifetime under perfect wear levelling.

        ``demand_write_bandwidth`` is in bytes/second of *demand* traffic;
        the scheme's amplification multiplies it.  PCM-class endurance is
        ~10^7-10^8 cycles; the default is the conservative end.
        """
        if device_bytes <= 0 or endurance_cycles <= 0:
            raise ValueError("device_bytes and endurance_cycles must be > 0")
        if demand_write_bandwidth <= 0:
            raise ValueError("demand_write_bandwidth must be > 0")
        total_capacity_writes = device_bytes * endurance_cycles
        physical_bandwidth = demand_write_bandwidth * self.amplification
        seconds = total_capacity_writes / physical_bandwidth
        return seconds / (365.25 * 24 * 3600)


def measure_wear(
    writebacks,
    scheme: str | CounterScheme,
    total_blocks: int | None = None,
) -> WearReport:
    """Replay a write-back stream (block indices) into a counter scheme
    and report its wear profile.

    ``scheme`` may be a scheme name (instantiated over ``total_blocks``)
    or a pre-built :class:`~repro.core.counters.base.CounterScheme`.
    """
    if isinstance(scheme, str):
        if total_blocks is None:
            raise ValueError("total_blocks required when scheme is a name")
        scheme = make_scheme(scheme, total_blocks)
    demand = 0
    for block in writebacks:
        scheme.on_write(block)
        demand += 1
    return WearReport(
        scheme=scheme.name,
        demand_writes=demand,
        re_encryptions=scheme.stats.re_encryptions,
        blocks_per_group=scheme.blocks_per_group,
    )


def compare_schemes(
    writebacks,
    total_blocks: int,
    schemes=("split", "delta", "dual_length"),
) -> dict:
    """Wear reports for several schemes over one (replayable) stream."""
    stream = list(writebacks)
    return {
        name: measure_wear(stream, name, total_blocks) for name in schemes
    }


__all__ = ["WearReport", "measure_wear", "compare_schemes"]
