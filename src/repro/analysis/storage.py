"""Storage-overhead accounting (Figure 1 and the paper's headline claim).

The paper's arithmetic, reproduced exactly:

* 56-bit counter per 64-byte block         -> 56/512  = 10.9%  (~11%)
* 56-bit MAC per 64-byte block             -> 56/512  = 10.9%  (~11%)
* conventional SEC-DED ECC                 -> 8/64    = 12.5%
* ECC for separately-stored MACs           -> MACs themselves need ECC
  bits, pushing ECC + MAC + counters toward ~1/4 of capacity (Section 3.1)
* Bonsai Merkle tree over the counters     -> adds the remaining ~0.2%
  of the quoted ">22%" total
* delta encoding: 56 + 64x7 bits per 64-block group packs the counters
  of a 4 KB group into one 64-byte block -> 1/64 = 1.56%, a 7x reduction
  vs monolithic counter storage (the paper rounds to "6x")
* MAC-in-ECC: MAC storage folds into the pre-existing ECC field -> 0%
  *additional* overhead on an ECC-equipped system.

Combined: ~22% of extra DRAM becomes ~2% (counters-in-delta + tree),
which is the Figure 1 story.  :func:`figure1_breakdowns` evaluates the
model for the baseline and optimized systems on the Table 1 configuration
(512 MB protected region, 3 KB on-chip SRAM), and also reports the
off-chip tree depth -- 5 levels baseline, 4 with delta encoding
(Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine.layout import MetadataLayout

BLOCK_BITS = 512
BLOCK_BYTES = 64


@dataclass(frozen=True)
class StorageBreakdown:
    """Per-component metadata storage for one configuration, as fractions
    of protected data capacity."""

    name: str
    counter_overhead: float
    mac_overhead: float
    tree_overhead: float
    ecc_overhead: float
    offchip_tree_levels: int

    @property
    def encryption_metadata(self) -> float:
        """Counters + MACs + tree (the paper's '22%' / '2%' quantity)."""
        return self.counter_overhead + self.mac_overhead + self.tree_overhead

    @property
    def total_with_ecc(self) -> float:
        """Everything, on an ECC-equipped system (Section 3.1's ~1/4)."""
        return self.encryption_metadata + self.ecc_overhead


def scheme_breakdown(
    name: str,
    counters_per_block: int,
    mac_separate: bool,
    protected_bytes: int = 512 * 1024 * 1024,
    onchip_tree_bytes: int = 3072,
    with_ecc: bool = True,
) -> StorageBreakdown:
    """Evaluate the storage model for one configuration.

    ``counters_per_block``: counters per 64-byte metadata block (8 for
    SGX-style monolithic, 64 for split/delta).  ``mac_separate``: whether
    MACs occupy their own storage (True for the baseline, False for
    MAC-in-ECC).  When MACs are separate *and* the system has ECC, the
    MAC storage itself consumes ECC bits too (Section 3.1); that factor
    is included in ``ecc_overhead``.
    """
    layout = MetadataLayout(
        protected_bytes=protected_bytes,
        counters_per_block=counters_per_block,
        mac_separate=mac_separate,
        onchip_tree_bytes=onchip_tree_bytes,
    )
    data_blocks = layout.data_blocks
    counter = layout.counter_blocks / data_blocks
    mac = layout.mac_blocks / data_blocks
    tree = layout.tree_blocks / data_blocks
    ecc = 0.0
    if with_ecc:
        # SEC-DED ECC covers data and any separately-stored metadata.
        ecc = 0.125 * (1.0 + counter + mac + tree)
    return StorageBreakdown(
        name=name,
        counter_overhead=counter,
        mac_overhead=mac,
        tree_overhead=tree,
        ecc_overhead=ecc,
        offchip_tree_levels=layout.offchip_tree_levels,
    )


def figure1_breakdowns(
    protected_bytes: int = 512 * 1024 * 1024,
) -> dict:
    """The Figure 1 comparison: baseline vs the paper's optimized system.

    Returns ``{"baseline": ..., "optimized": ...}`` breakdowns.
    """
    baseline = scheme_breakdown(
        "baseline (56-bit counters, separate MACs)",
        counters_per_block=8,
        mac_separate=True,
        protected_bytes=protected_bytes,
    )
    optimized = scheme_breakdown(
        "optimized (delta counters, MAC-in-ECC)",
        counters_per_block=64,
        mac_separate=False,
        protected_bytes=protected_bytes,
    )
    return {"baseline": baseline, "optimized": optimized}


def counter_compaction_factor(
    counter_bits: int = 56,
    delta_bits: int = 7,
    reference_bits: int = 56,
    blocks_per_group: int = 64,
) -> float:
    """Raw-bit compaction of delta encoding vs monolithic counters.

    56-bit counters: 3584 bits per 64-block group; delta: 56 + 64*7 = 504
    bits -> 7.1x (the paper quotes "6x" against the same packed-block
    budget; both numbers are printed by the Figure 1 bench).
    """
    monolithic = counter_bits * blocks_per_group
    delta = reference_bits + delta_bits * blocks_per_group
    return monolithic / delta


__all__ = [
    "StorageBreakdown",
    "scheme_breakdown",
    "figure1_breakdowns",
    "counter_compaction_factor",
]
