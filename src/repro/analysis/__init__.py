"""Analytical models and fault-injection harnesses.

* :mod:`repro.analysis.storage` -- the storage-overhead arithmetic of
  Figure 1 and Section 1 (22% -> 2%) and the tree-depth reduction.
* :mod:`repro.analysis.faults` -- the Figure 3 fault-pattern matrix
  comparing conventional SEC-DED with MAC-based checking.
"""

from repro.analysis.storage import (
    StorageBreakdown,
    figure1_breakdowns,
    scheme_breakdown,
)
from repro.analysis.faults import (
    FaultOutcome,
    FaultScenario,
    FaultMatrix,
    figure3_scenarios,
    run_fault_matrix,
)
from repro.analysis.attacks import ALL_ATTACKS, AttackResult, run_all
from repro.analysis.wear import WearReport, compare_schemes, measure_wear
from repro.analysis.energy import (
    EnergyBreakdown,
    EnergyModel,
    measure_backend_energy,
)

__all__ = [
    "StorageBreakdown",
    "scheme_breakdown",
    "figure1_breakdowns",
    "FaultScenario",
    "FaultOutcome",
    "FaultMatrix",
    "figure3_scenarios",
    "run_fault_matrix",
    "AttackResult",
    "ALL_ATTACKS",
    "run_all",
    "WearReport",
    "measure_wear",
    "compare_schemes",
    "EnergyModel",
    "EnergyBreakdown",
    "measure_backend_energy",
]
