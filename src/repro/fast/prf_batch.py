"""Vectorized SplitMix64 mixing (fast-mode keystream and MAC masks).

Mirrors :mod:`repro.crypto.prf` on uint64 numpy arrays.  All arithmetic is
modulo 2^64 by construction of the dtype; the explicit ``errstate`` guard
silences the (intentional) wrap-around overflow.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.prf import SplitMix64

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def splitmix64_batch(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a uint64 array (matches ``splitmix64``)."""
    v = values.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        v += _GOLDEN
        v = (v ^ (v >> np.uint64(30))) * _MIX1
        v = (v ^ (v >> np.uint64(27))) * _MIX2
    return v ^ (v >> np.uint64(31))


class BatchSplitMix64:
    """Vector twin of :class:`repro.crypto.prf.SplitMix64`."""

    def __init__(self, prf: SplitMix64) -> None:
        self._k0 = np.uint64(prf._k0)
        self._k1 = np.uint64(prf._k1)

    def value(self, x: np.ndarray) -> np.ndarray:
        """``prf(x) = mix(mix(x ^ k0) + k1)`` over a uint64 array."""
        mixed = splitmix64_batch(x.astype(np.uint64) ^ self._k0)
        with np.errstate(over="ignore"):
            mixed += self._k1
        return splitmix64_batch(mixed)


__all__ = ["splitmix64_batch", "BatchSplitMix64"]
