"""Batched CTR keystream generation and pad-XOR over N memory blocks.

Vector twin of :class:`repro.crypto.ctr.CtrModeCipher`: one call produces
the keystreams for N ``(counter, address)`` nonces and XORs them into N
64-byte blocks.  The actual pad computation lives in the scalar cipher's
keystream backend (:mod:`repro.fast.backends`) -- AES-family backends
batch the Section 2.1 nonce blocks through their block encryptor (numpy
byte-plane AES or hardware AES-NI), the splitmix backend vectorizes the
simulation PRF -- so this class is a thin shape-checking adapter and the
batched pads are bit-identical to the scalar ones by construction.  The
differential suites pin that equivalence.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.crypto.ctr import CtrModeCipher, MEMORY_BLOCK_SIZE


class BatchCtrCipher:
    """Counter-mode encryption of ``(N, 64)`` uint8 block arrays."""

    def __init__(self, cipher: CtrModeCipher) -> None:
        generator = cipher._generator
        self.mode = generator.mode
        self.family = generator.family
        self._engine = generator.engine

    def keystream(
        self, counters: Sequence[int], addresses: Sequence[int]
    ) -> np.ndarray:
        """64-byte keystreams for N (counter, address) nonces: (N, 64)."""
        return self._engine.pads(counters, addresses)

    def xor_blocks(
        self,
        data: np.ndarray,
        counters: Sequence[int],
        addresses: Sequence[int],
    ) -> np.ndarray:
        """Encrypt/decrypt ``(N, 64)`` uint8 blocks (XOR with keystream)."""
        if data.ndim != 2 or data.shape[1] != MEMORY_BLOCK_SIZE:
            raise ValueError("data must have shape (N, 64)")
        if data.shape[0] != len(counters) or len(counters) != len(addresses):
            raise ValueError("data, counters and addresses must align")
        return data ^ self.keystream(counters, addresses)


__all__ = ["BatchCtrCipher"]
