"""Batched CTR keystream generation and pad-XOR over N memory blocks.

Vector twin of :class:`repro.crypto.ctr.CtrModeCipher`: one call produces
the keystreams for N ``(counter, address)`` nonces and XORs them into N
64-byte blocks.  Both keystream modes are covered:

* ``aes``  -- the Section 2.1 construction: four AES blocks per memory
  block over ``56-bit counter | 0 | 48-bit address | 16-bit segment``,
  batched through :class:`repro.fast.aes_batch.BatchAes128`;
* ``fast`` -- the simulation PRF: ``prf(addr ^ mix(counter ^ word))``
  expanded 8 bytes at a time, batched through
  :class:`repro.fast.prf_batch.BatchSplitMix64`.

The byte-level layouts replicate the scalar code exactly (including the
masking quirks, e.g. the aes-mode keystream only sees the low 56 counter
bits); the differential suite pins the equivalence.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.crypto.ctr import CtrModeCipher, MEMORY_BLOCK_SIZE
from repro.fast.aes_batch import BatchAes128
from repro.fast.prf_batch import BatchSplitMix64, splitmix64_batch

_MASK64 = (1 << 64) - 1
_MASK56 = (1 << 56) - 1
_MASK48 = (1 << 48) - 1
_WORDS_PER_BLOCK = MEMORY_BLOCK_SIZE // 8
_AES_BLOCKS = MEMORY_BLOCK_SIZE // 16


def _as_u64(values: Sequence[int], mask: int = _MASK64) -> np.ndarray:
    """Convert arbitrary non-negative Python ints to masked uint64."""
    return np.array([v & mask for v in values], dtype=np.uint64)


class BatchCtrCipher:
    """Counter-mode encryption of ``(N, 64)`` uint8 block arrays."""

    def __init__(self, cipher: CtrModeCipher) -> None:
        generator = cipher._generator
        self.mode = generator.mode
        self._aes: BatchAes128 | None = None
        self._prf: BatchSplitMix64 | None = None
        if generator.mode == "aes":
            assert generator._aes is not None
            self._aes = BatchAes128.from_scalar(generator._aes)
        else:
            assert generator._fast is not None
            self._prf = BatchSplitMix64(generator._fast._prf)

    def keystream(
        self, counters: Sequence[int], addresses: Sequence[int]
    ) -> np.ndarray:
        """64-byte keystreams for N (counter, address) nonces: (N, 64)."""
        if self._aes is not None:
            return self._aes_keystream(counters, addresses)
        return self._fast_keystream(counters, addresses)

    def _aes_keystream(
        self, counters: Sequence[int], addresses: Sequence[int]
    ) -> np.ndarray:
        n = len(counters)
        c = _as_u64(counters, _MASK56)
        a = _as_u64(addresses, _MASK48)
        # AES input per segment: 7-byte counter | 0 | 6-byte address |
        # 2-byte segment index, all little-endian (scalar layout).
        blocks = np.zeros((n, _AES_BLOCKS, 16), dtype=np.uint8)
        for k in range(7):
            blocks[:, :, k] = (
                (c >> np.uint64(8 * k)) & np.uint64(0xFF)
            ).astype(np.uint8)[:, None]
        for k in range(6):
            blocks[:, :, 8 + k] = (
                (a >> np.uint64(8 * k)) & np.uint64(0xFF)
            ).astype(np.uint8)[:, None]
        blocks[:, :, 14] = np.arange(_AES_BLOCKS, dtype=np.uint8)
        encrypted = self._aes.encrypt_blocks(blocks.reshape(-1, 16))
        return encrypted.reshape(n, MEMORY_BLOCK_SIZE)

    def _fast_keystream(
        self, counters: Sequence[int], addresses: Sequence[int]
    ) -> np.ndarray:
        n = len(counters)
        # Scalar seed = counter << 64 | address, split back into
        # high = counter, low = address inside XorShiftKeystream.
        high = _as_u64(counters)
        low = _as_u64(addresses)
        word_index = np.arange(_WORDS_PER_BLOCK, dtype=np.uint64)
        tweak = splitmix64_batch(high[:, None] ^ word_index)
        words = self._prf.value(low[:, None] ^ tweak)
        return (
            words.astype("<u8").view(np.uint8).reshape(n, MEMORY_BLOCK_SIZE)
        )

    def xor_blocks(
        self,
        data: np.ndarray,
        counters: Sequence[int],
        addresses: Sequence[int],
    ) -> np.ndarray:
        """Encrypt/decrypt ``(N, 64)`` uint8 blocks (XOR with keystream)."""
        if data.ndim != 2 or data.shape[1] != MEMORY_BLOCK_SIZE:
            raise ValueError("data must have shape (N, 64)")
        if data.shape[0] != len(counters) or len(counters) != len(addresses):
            raise ValueError("data, counters and addresses must align")
        return data ^ self.keystream(counters, addresses)


__all__ = ["BatchCtrCipher"]
