"""Batched GF(2^64) multiply-by-constant and Horner polynomial hashing.

The Carter-Wegman hash only ever multiplies by one fixed field element:
the hash key ``h``.  Multiplication by a constant is GF(2)-linear in the
other operand, so it can be tabulated: with ``B[bit] = (x^bit) * h`` the
product of any 64-bit element is the XOR of the ``B`` entries selected by
its set bits.  Grouping bits into 8 byte-windows gives eight 256-entry
uint64 tables, and a batched multiply becomes eight gathers and seven
XORs over the whole vector -- the software shape of the paper's "composed
Galois field multiplications" evaluated one hardware cycle per block.

Tables are built once per key with the scalar
:data:`repro.crypto.gf.GF64` field, so the fast path inherits its
reduction polynomial by construction.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.gf import GF64


class BatchGf64MulByConstant:
    """Multiply uint64 arrays by a fixed GF(2^64) element."""

    def __init__(self, constant: int) -> None:
        basis = [GF64.mul(1 << bit, constant) for bit in range(64)]
        tables = np.zeros((8, 256), dtype=np.uint64)
        for window in range(8):
            window_basis = basis[8 * window : 8 * window + 8]
            for value in range(1, 256):
                low = value & -value
                tables[window, value] = tables[window, value ^ low] ^ np.uint64(
                    window_basis[low.bit_length() - 1]
                )
        self._tables = tables

    def __call__(self, values: np.ndarray) -> np.ndarray:
        """Product ``values * constant`` over a uint64 array."""
        v = values.astype(np.uint64, copy=False)
        acc = self._tables[0][v & np.uint64(0xFF)]
        for window in range(1, 8):
            acc = acc ^ self._tables[window][
                (v >> np.uint64(8 * window)) & np.uint64(0xFF)
            ]
        return acc


class BatchHornerHash:
    """Batched ``GF64.horner_hash`` for a fixed key over (N, W) words."""

    def __init__(self, key: int) -> None:
        self._mul_key = BatchGf64MulByConstant(key)

    def hash(self, words: np.ndarray) -> np.ndarray:
        """Evaluate the polynomial hash row-wise: (N, W) -> (N,)."""
        if words.ndim != 2:
            raise ValueError("words must have shape (N, W)")
        acc = np.zeros(words.shape[0], dtype=np.uint64)
        for column in range(words.shape[1]):
            acc = self._mul_key(acc ^ words[:, column])
        return acc


__all__ = ["BatchGf64MulByConstant", "BatchHornerHash"]
