"""Vectorized batch kernels for the engine's hot paths.

Every scalar hot path in the library -- AES-CTR keystream generation,
Carter-Wegman MAC evaluation, flip-and-check correction, and delta-group
counter pack/unpack -- has a numpy-batched twin in this package that
processes N blocks per call instead of one.  The pairing is explicit: each
fast kernel registers against its scalar reference in a
:class:`repro.fast.kernels.KernelPair`, and the kernel table can run in
``fast`` (batched only), ``reference`` (scalar only), ``paranoid``
(run both, cross-check every call) or sampled-paranoid
(``paranoid_sample=N``: cross-check 1-in-N calls on a seeded schedule)
mode.  The differential test suites (`tests/fast/test_differential.py`,
`tests/fast/test_backend_differential.py`) property-test ``fast(x) ==
reference(x)`` for every pair and every keystream backend, so the
speedup never costs bit-exactness.

The block cipher itself is pluggable: :mod:`repro.fast.backends` keys
keystream execution strategies (``reference`` / ``fast`` / ``aesni`` /
``splitmix``) by name, selected through ``EngineConfig.keystream_mode``.

:class:`repro.fast.batch_memory.BatchSecureMemory` composes the kernels
into a façade over :class:`repro.core.engine.secure_memory.SecureMemory`
that queues reads/writes, groups them per 4 KB block-group, and flushes
them through the batch kernels while leaving the underlying engine in a
state indistinguishable from having performed the same operations
scalar-ly, one at a time.

Submodules are imported lazily (PEP 562): ``repro.fast.backends`` is
imported by ``repro.core.engine.config`` for backend-name validation, so
an eager import of :mod:`repro.fast.batch_memory` here would close an
import cycle back through the engine.
"""

from typing import Any

__all__ = [
    "BatchSecureMemory",
    "KernelDivergence",
    "KernelPair",
    "KernelTable",
]

_LAZY = {
    "BatchSecureMemory": "repro.fast.batch_memory",
    "KernelDivergence": "repro.fast.kernels",
    "KernelPair": "repro.fast.kernels",
    "KernelTable": "repro.fast.kernels",
}


def __getattr__(name: str) -> Any:
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list:
    return sorted(set(globals()) | set(_LAZY))
