"""Vectorized batch kernels for the engine's hot paths.

Every scalar hot path in the library -- AES-CTR keystream generation,
Carter-Wegman MAC evaluation, flip-and-check correction, and delta-group
counter pack/unpack -- has a numpy-batched twin in this package that
processes N blocks per call instead of one.  The pairing is explicit: each
fast kernel registers against its scalar reference in a
:class:`repro.fast.kernels.KernelPair`, and the kernel table can run in
``fast`` (batched only), ``reference`` (scalar only) or ``paranoid``
(run both, cross-check every call) mode.  The differential test suite
(`tests/fast/test_differential.py`) property-tests ``fast(x) ==
reference(x)`` for every pair, so the speedup never costs bit-exactness.

:class:`repro.fast.batch_memory.BatchSecureMemory` composes the kernels
into a façade over :class:`repro.core.engine.secure_memory.SecureMemory`
that queues reads/writes, groups them per 4 KB block-group, and flushes
them through the batch kernels while leaving the underlying engine in a
state indistinguishable from having performed the same operations
scalar-ly, one at a time.
"""

from repro.fast.batch_memory import BatchSecureMemory
from repro.fast.kernels import KernelDivergence, KernelPair, KernelTable

__all__ = [
    "BatchSecureMemory",
    "KernelDivergence",
    "KernelPair",
    "KernelTable",
]
