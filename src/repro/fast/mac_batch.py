"""Batched 56-bit Carter-Wegman MAC over vectors of 64-byte blocks.

Vector twin of :class:`repro.crypto.mac.CarterWegmanMac`: the universal
hash runs through the window-table GF(2^64) Horner evaluator and the
nonce masks are batched through either the AES byte-plane cipher ("aes"
mode) or the vectorized SplitMix64 PRF ("fast" mode), replicating the
scalar mask layouts bit for bit (including the high-bit domain separator
on the counter half of the AES mask block).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.crypto.mac import MAC_MASK, CarterWegmanMac
from repro.fast.aes_batch import BatchAes128
from repro.fast.gf_batch import BatchHornerHash
from repro.fast.prf_batch import BatchSplitMix64

_MASK64 = (1 << 64) - 1
_COUNTER_MASK = (1 << 63) - 1
_COUNTER_TOP = 1 << 63
_FAST_MASK_TWEAK = np.uint64(0xA5A5A5A5A5A5A5A5)


def _as_u64(values: Sequence[int], mask: int = _MASK64) -> np.ndarray:
    return np.array([v & mask for v in values], dtype=np.uint64)


def words_le(messages: np.ndarray) -> np.ndarray:
    """(N, 64) uint8 message bytes -> (N, 8) little-endian uint64 words."""
    if messages.ndim != 2 or messages.shape[1] % 8:
        raise ValueError("messages must have shape (N, 8k)")
    return np.ascontiguousarray(messages).view("<u8")


class BatchCarterWegmanMac:
    """Batched tags for N (message, address, counter) triples."""

    def __init__(self, mac: CarterWegmanMac) -> None:
        self.mode = mac.mode
        self._horner = BatchHornerHash(mac._h)
        self._mask_aes = None
        self._mask_prf: BatchSplitMix64 | None = None
        if mac._mask_cipher is not None:
            # The mask cipher batches through the MAC's backend encryptor
            # when one is attached (e.g. AES-NI); otherwise through the
            # numpy byte-plane AES bound to the scalar key schedule.
            if mac._mask_encryptor is not None:
                self._mask_aes = mac._mask_encryptor
            else:
                self._mask_aes = BatchAes128.from_scalar(mac._mask_cipher)
        else:
            assert mac._mask_prf is not None
            self._mask_prf = BatchSplitMix64(mac._mask_prf)

    def hash_part(self, messages: np.ndarray) -> np.ndarray:
        """Batched 64-bit polynomial hash of (N, 64) uint8 messages."""
        return self._horner.hash(words_le(messages))

    def _mask_values(
        self, addresses: Sequence[int], counters: Sequence[int]
    ) -> np.ndarray:
        a = _as_u64(addresses)
        if self._mask_aes is not None:
            # Scalar layout: 8-byte address LE | 8-byte (counter|top) LE.
            c = np.array(
                [(v & _COUNTER_MASK) | _COUNTER_TOP for v in counters],
                dtype=np.uint64,
            )
            blocks = np.empty((len(addresses), 16), dtype=np.uint8)
            blocks[:, :8] = a.astype("<u8")[:, None].view(np.uint8)
            blocks[:, 8:] = c.astype("<u8")[:, None].view(np.uint8)
            encrypted = self._mask_aes.encrypt_blocks(blocks)
            return np.ascontiguousarray(encrypted[:, :8]).view("<u8")[:, 0]
        assert self._mask_prf is not None
        mixed = self._mask_prf.value(a)
        return self._mask_prf.value(
            mixed ^ _as_u64(counters) ^ _FAST_MASK_TWEAK
        )

    def tags(
        self,
        messages: np.ndarray,
        addresses: Sequence[int],
        counters: Sequence[int],
    ) -> np.ndarray:
        """56-bit tags for (N, 64) messages under N nonces: (N,) uint64."""
        if messages.shape[0] != len(addresses) or len(addresses) != len(
            counters
        ):
            raise ValueError("messages, addresses and counters must align")
        full = self.hash_part(messages) ^ self._mask_values(
            addresses, counters
        )
        return full & np.uint64(MAC_MASK)


__all__ = ["BatchCarterWegmanMac", "words_le"]
