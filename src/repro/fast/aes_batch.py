"""Batched AES-128 over N 16-byte blocks (numpy byte-plane implementation).

The scalar :class:`repro.crypto.aes.AES128` processes one block per call;
this module applies the identical FIPS-197 round function to a whole
``(N, 16)`` uint8 array at once:

* SubBytes is a single table gather through the S-box,
* ShiftRows is a fixed index permutation of the 16 column-major state
  bytes,
* MixColumns uses the classic xtime identity
  ``a' = a ^ t ^ xtime(a ^ b)`` (with ``t = a^b^c^d``) evaluated on byte
  planes through a precomputed 256-entry xtime table,
* AddRoundKey broadcasts the same 16 round-key bytes across the batch.

Round keys come from the scalar key schedule, so the two implementations
can never disagree about key expansion.  Equivalence with the scalar
cipher is property-tested in ``tests/fast/test_differential.py`` and both
are pinned to the FIPS-197 vectors in ``tests/crypto/test_kat.py``.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.aes import AES128, ROUNDS, SBOX, _xtime

_SBOX_TABLE = np.array(SBOX, dtype=np.uint8)
_XTIME_TABLE = np.array([_xtime(a) for a in range(256)], dtype=np.uint8)
# ShiftRows on the flat column-major state: output byte r + 4c comes from
# input byte r + 4*((c + r) % 4)  (row r rotates left by r).
_SHIFT_ROWS = np.array(
    [r + 4 * ((c + r) % 4) for c in range(4) for r in range(4)],
    dtype=np.intp,
)


class BatchAes128:
    """AES-128 encryption of ``(N, 16)`` uint8 block arrays."""

    def __init__(self, key: bytes) -> None:
        self._round_keys = self._pack_round_keys(AES128._expand_key(key))

    @classmethod
    def from_scalar(cls, aes: AES128) -> "BatchAes128":
        """Bind to an existing scalar cipher's expanded key schedule."""
        batch = cls.__new__(cls)
        batch._round_keys = cls._pack_round_keys(aes._round_keys)
        return batch

    @staticmethod
    def _pack_round_keys(round_keys: list[bytes]) -> np.ndarray:
        return np.array([list(rk) for rk in round_keys], dtype=np.uint8)

    @staticmethod
    def _mix_columns(state: np.ndarray) -> np.ndarray:
        # Columns are the four consecutive byte quads of the flat state.
        cols = state.reshape(-1, 4, 4)
        a = cols[:, :, 0]
        b = cols[:, :, 1]
        c = cols[:, :, 2]
        d = cols[:, :, 3]
        t = a ^ b ^ c ^ d
        mixed = np.empty_like(cols)
        mixed[:, :, 0] = a ^ t ^ _XTIME_TABLE[a ^ b]
        mixed[:, :, 1] = b ^ t ^ _XTIME_TABLE[b ^ c]
        mixed[:, :, 2] = c ^ t ^ _XTIME_TABLE[c ^ d]
        mixed[:, :, 3] = d ^ t ^ _XTIME_TABLE[d ^ a]
        return mixed.reshape(-1, 16)

    def encrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Encrypt a ``(N, 16)`` uint8 array of plaintext blocks."""
        if blocks.ndim != 2 or blocks.shape[1] != 16:
            raise ValueError("blocks must have shape (N, 16)")
        state = blocks.astype(np.uint8, copy=True)
        state ^= self._round_keys[0]
        for r in range(1, ROUNDS):
            state = _SBOX_TABLE[state]
            state = state[:, _SHIFT_ROWS]
            state = self._mix_columns(state)
            state ^= self._round_keys[r]
        state = _SBOX_TABLE[state]
        state = state[:, _SHIFT_ROWS]
        state ^= self._round_keys[ROUNDS]
        return state


__all__ = ["BatchAes128"]
