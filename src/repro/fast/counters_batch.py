"""Vectorized delta-group metadata pack/unpack (Figures 2/6 bit layouts).

The scalar schemes serialize counter groups through ``BitWriter`` /
``BitReader`` -- LSB-first fields in a little-endian byte stream, which is
exactly numpy's ``bitorder="little"`` convention.  These kernels pack and
unpack whole groups with two ``packbits``/``unpackbits`` calls instead of
65+ Python-level field operations, for both the single-width delta layout
(56-bit reference + 64 fixed-width deltas) and the dual-length layout
(reference + 64 base fields + 16 extension fields + widened-group index +
valid flag).

Encoders replicate ``BitWriter``'s range validation so out-of-range
fields raise the same ``ValueError`` the scalar serializer would.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.lint.contracts import WIDEN_INDEX_BITS, WIDEN_VALID_BITS


def _check_fits(value: int, width: int, field: str) -> None:
    if not 0 <= value < (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits ({field})")


def _padded_bytes(total_bits: int) -> int:
    length = -(-total_bits // 8)
    return -(-length // 64) * 64


def _bits_of_scalar(value: int, width: int) -> np.ndarray:
    word = np.uint64(value)
    return (
        (word >> np.arange(width, dtype=np.uint64)) & np.uint64(1)
    ).astype(np.uint8)

def _bits_of_fields(values: np.ndarray, width: int) -> np.ndarray:
    """(N,) uint64 -> (N*width,) LSB-first bit planes, row-major."""
    bits = (
        values[:, None] >> np.arange(width, dtype=np.uint64)
    ) & np.uint64(1)
    return bits.astype(np.uint8).ravel()


def _value_of_bits(bits: np.ndarray) -> int:
    width = bits.shape[0]
    powers = np.uint64(1) << np.arange(width, dtype=np.uint64)
    return int((bits.astype(np.uint64) * powers).sum())


def _values_of_fields(bits: np.ndarray, count: int, width: int) -> np.ndarray:
    """(count*width,) bit stream -> (count,) uint64 field values."""
    planes = bits[: count * width].reshape(count, width).astype(np.uint64)
    powers = np.uint64(1) << np.arange(width, dtype=np.uint64)
    return (planes * powers).sum(axis=1)


# -- single-width delta layout (DeltaCounters) -----------------------------


def delta_encode(
    reference: int,
    deltas: Sequence[int],
    reference_bits: int,
    delta_bits: int,
) -> bytes:
    """Serialize one group exactly as ``DeltaCounters.group_metadata``."""
    _check_fits(reference, reference_bits, "reference")
    for delta in deltas:
        _check_fits(delta, delta_bits, "delta")
    total_bits = reference_bits + len(deltas) * delta_bits
    bits = np.zeros(_padded_bytes(total_bits) * 8, dtype=np.uint8)
    bits[:reference_bits] = _bits_of_scalar(reference, reference_bits)
    bits[reference_bits:total_bits] = _bits_of_fields(
        np.array(deltas, dtype=np.uint64), delta_bits
    )
    return np.packbits(bits, bitorder="little").tobytes()


def delta_decode(
    data: bytes,
    reference_bits: int,
    delta_bits: int,
    blocks_per_group: int,
) -> list[int]:
    """Decode counters exactly as ``DeltaCounters.decode_metadata``."""
    bits = np.unpackbits(
        np.frombuffer(data, dtype=np.uint8), bitorder="little"
    )
    reference = _value_of_bits(bits[:reference_bits])
    deltas = _values_of_fields(
        bits[reference_bits:], blocks_per_group, delta_bits
    )
    return [reference + int(d) for d in deltas]


# -- dual-length layout (DualLengthDeltaCounters) --------------------------


def dual_length_encode(
    reference: int,
    deltas: Sequence[int],
    widened: int | None,
    reference_bits: int,
    base_delta_bits: int,
    extension_bits: int,
    deltas_per_delta_group: int,
) -> bytes:
    """Serialize exactly as ``DualLengthDeltaCounters.group_metadata``."""
    _check_fits(reference, reference_bits, "reference")
    base_mask = (1 << base_delta_bits) - 1
    values = np.array(deltas, dtype=np.uint64)
    n = len(deltas)
    if widened is None:
        extension = np.zeros(deltas_per_delta_group, dtype=np.uint64)
        index, valid = 0, 0
    else:
        _check_fits(widened, WIDEN_INDEX_BITS, "widened index")
        start = widened * deltas_per_delta_group
        extension = values[start : start + deltas_per_delta_group] >> np.uint64(
            base_delta_bits
        )
        for value in extension:
            _check_fits(int(value), extension_bits, "extension")
        index, valid = widened, 1
    total_bits = (
        reference_bits
        + base_delta_bits * n
        + extension_bits * deltas_per_delta_group
        + WIDEN_INDEX_BITS
        + WIDEN_VALID_BITS
    )
    bits = np.zeros(_padded_bytes(total_bits) * 8, dtype=np.uint8)
    cursor = 0
    bits[:reference_bits] = _bits_of_scalar(reference, reference_bits)
    cursor = reference_bits
    bits[cursor : cursor + base_delta_bits * n] = _bits_of_fields(
        values & np.uint64(base_mask), base_delta_bits
    )
    cursor += base_delta_bits * n
    bits[
        cursor : cursor + extension_bits * deltas_per_delta_group
    ] = _bits_of_fields(extension, extension_bits)
    cursor += extension_bits * deltas_per_delta_group
    bits[cursor : cursor + WIDEN_INDEX_BITS] = _bits_of_scalar(
        index, WIDEN_INDEX_BITS
    )
    cursor += WIDEN_INDEX_BITS
    bits[cursor : cursor + WIDEN_VALID_BITS] = _bits_of_scalar(
        valid, WIDEN_VALID_BITS
    )
    return np.packbits(bits, bitorder="little").tobytes()


def dual_length_decode(
    data: bytes,
    reference_bits: int,
    base_delta_bits: int,
    extension_bits: int,
    blocks_per_group: int,
    deltas_per_delta_group: int,
) -> list[int]:
    """Decode exactly as ``DualLengthDeltaCounters.decode_metadata``."""
    bits = np.unpackbits(
        np.frombuffer(data, dtype=np.uint8), bitorder="little"
    )
    cursor = 0
    reference = _value_of_bits(bits[:reference_bits])
    cursor = reference_bits
    deltas = _values_of_fields(
        bits[cursor:], blocks_per_group, base_delta_bits
    )
    cursor += base_delta_bits * blocks_per_group
    extension = _values_of_fields(
        bits[cursor:], deltas_per_delta_group, extension_bits
    )
    cursor += extension_bits * deltas_per_delta_group
    widened = _value_of_bits(bits[cursor : cursor + WIDEN_INDEX_BITS])
    cursor += WIDEN_INDEX_BITS
    valid = _value_of_bits(bits[cursor : cursor + WIDEN_VALID_BITS])
    if valid:
        start = widened * deltas_per_delta_group
        deltas[start : start + deltas_per_delta_group] |= (
            extension << np.uint64(base_delta_bits)
        )
    return [reference + int(d) for d in deltas]


__all__ = [
    "delta_encode",
    "delta_decode",
    "dual_length_encode",
    "dual_length_decode",
]
