"""Vectorized flip-and-check correction over the 512 ciphertext bits.

The scalar accelerated corrector walks Python dictionaries of syndromes;
this variant keeps the 512 single-bit syndromes in one uint64 vector and
finds candidates with array comparisons and a sorted-syndrome
``searchsorted`` (the meet-in-the-middle step evaluates all 512 partner
syndromes at once).  Candidate *enumeration order*, the ``checks``
accounting, and the confirming real-MAC evaluations are identical to
:meth:`FlipAndCheckCorrector.correct_accelerated`, so the two return
equal :class:`CorrectionResult` objects on every input -- the property
the differential suite pins.
"""

from __future__ import annotations

import numpy as np

from repro.core.ecc_mac.correction import (
    BLOCK_BITS,
    BLOCK_BYTES,
    CorrectionMethod,
    CorrectionResult,
    FlipAndCheckCorrector,
    _flip,
)


class BatchFlipAndCheck:
    """Syndrome-vectorized twin of the accelerated corrector."""

    def __init__(self, corrector: FlipAndCheckCorrector) -> None:
        self.mac = corrector.mac
        self.max_errors = corrector.max_errors
        syndromes = self.mac.single_bit_syndromes(BLOCK_BYTES)
        self._syndromes = np.array(syndromes, dtype=np.uint64)
        # Stable sort keeps equal syndromes in ascending bit-position
        # order, matching the scalar index lists.
        self._order = np.argsort(self._syndromes, kind="stable")
        self._sorted = self._syndromes[self._order]

    def correct_accelerated(
        self, ciphertext: bytes, address: int, counter: int, stored_mac: int
    ) -> CorrectionResult:
        """Vectorized syndrome decode; confirm candidates with real MACs."""
        if len(ciphertext) != BLOCK_BYTES:
            raise ValueError(f"ciphertext must be {BLOCK_BYTES} bytes")
        delta = np.uint64(
            self.mac.tag(ciphertext, address, counter) ^ stored_mac
        )
        checks = 0

        for position in np.nonzero(self._syndromes == delta)[0]:
            candidate = _flip(ciphertext, (int(position),))
            checks += 1
            if self.mac.tag(candidate, address, counter) == stored_mac:
                return CorrectionResult(
                    True,
                    candidate,
                    (int(position),),
                    checks,
                    CorrectionMethod.ACCELERATED,
                )

        if self.max_errors >= 2:
            partners = delta ^ self._syndromes
            left = np.searchsorted(self._sorted, partners, side="left")
            right = np.searchsorted(self._sorted, partners, side="right")
            populated = np.nonzero(right > left)[0]
            for i in populated:
                for j in self._order[left[i] : right[i]]:
                    if j <= i:
                        continue
                    candidate = _flip(ciphertext, (int(i), int(j)))
                    checks += 1
                    if (
                        self.mac.tag(candidate, address, counter)
                        == stored_mac
                    ):
                        return CorrectionResult(
                            True,
                            candidate,
                            (int(i), int(j)),
                            checks,
                            CorrectionMethod.ACCELERATED,
                        )
        return CorrectionResult(
            False, None, (), checks, CorrectionMethod.ACCELERATED
        )


__all__ = ["BatchFlipAndCheck", "BLOCK_BITS"]
