"""Batched façade over :class:`SecureMemory` with scalar-equivalent state.

``BatchSecureMemory`` queues reads and writes, then flushes them through
the batch kernels.  The contract is *state equivalence*: after a flush,
the underlying engine's externally observable state -- ciphertexts, ECC
fields / MAC store, serialized counter storage, tree leaves and root,
scheme state, and every ``engine.*`` / ``counters.*`` metric -- is
bit-identical to what the scalar ``engine.write`` / ``engine.read`` loop
would have produced for the same operation sequence.  The equivalence
test suite asserts exactly that.

How the write path keeps the scalar semantics while batching:

* ``scheme.on_write`` runs per block, in order (counter state machines
  are inherently sequential), but the expensive keystream + MAC work is
  deferred into per-run batches;
* before each ``on_write``, any group whose serialized storage lags the
  scheme (written earlier in the run) is re-serialized into
  ``counter_storage`` -- that is what the scalar engine's per-write
  metadata commit would have left there, and it is what the overflow
  re-encryption path reads its old counters from;
* overflow re-encryptions (group or global) are rare and intricate, so
  they fall back to the engine's own scalar handlers after the pending
  batch is flushed (metered as ``fast.fallback.scalar``);
* Merkle-tree leaf updates are deferred to one commit per touched group
  at the end of the run (intermediate leaf states are unobservable --
  no read can happen inside a write run).

The read path verifies each touched group's tree leaf once, decodes its
counters with the batch kernel, batch-verifies MACs over the stored
ciphertexts and batch-decrypts the clean blocks; any anomaly (Hamming
status not clean, MAC mismatch, lazily-initialized block, perturb hook
installed) falls back to the scalar ``engine.read`` for that block, in
queue order, so corrections, heal-writebacks, metrics and raised
``IntegrityError``\\ s are exactly the scalar ones.

Engines with persistence attached get **group commit**: each flushed
write run becomes *one* journal transaction -- ``begin_txn`` before the
first ``on_write``, every stored block image and every touched group's
metadata mirrored into it (including anything the scalar re-encryption
fallbacks store, which journal inside the same open transaction), and a
single ``commit_txn(..., writes=N)`` whose seal acknowledges the whole
batch.  The write-ahead invariants are unchanged -- the record is the
same physical-redo shape the scalar path seals per write, just N writes
wide -- so recovery replays it with no new code, and a torn group-commit
frame discards the *entire* batch: a flush lands atomically or not at
all.  Reads never run inside a flush transaction (read-path corrections
stay volatile heals, exactly as on the scalar path).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.counters.events import CounterEvent
from repro.core.ecc_mac.detection import CheckOutcome
from repro.core.ecc_mac.layout import EccField
from repro.core.engine.config import ConfigError
from repro.core.engine.secure_memory import (
    IntegrityError,
    ReadResult,
    SecureMemory,
)
from repro.ecc.hamming import DecodeStatus
from repro.ecc.parity import parity_of_bytes
from repro.fast.kernels import KernelTable, build_kernel_table
from repro.lint.contracts import BLOCK_BYTES
from repro.persist.journal import DataImage


class BatchSecureMemory:
    """Queue/flush façade running an engine through the batch kernels."""

    def __init__(
        self,
        engine: SecureMemory,
        mode: str = "fast",
        paranoid_sample: int = 0,
    ) -> None:
        if not isinstance(engine, SecureMemory):
            raise ConfigError(
                "BatchSecureMemory wraps the core SecureMemory, not "
                f"{type(engine).__name__}: the working stack order is "
                "SecureMemory (+durability) -> BatchSecureMemory, with "
                "ResilientMemory translating logical addresses above "
                "both -- repro.stack.EngineStack builds exactly that"
            )
        self.engine = engine
        self.kernels: KernelTable = build_kernel_table(
            engine.cipher,
            engine.mac,
            engine.corrector,
            engine.scheme,
            mode=mode,
            paranoid_sample=paranoid_sample,
        )
        self._has_counter_kernels = "counters.encode" in self.kernels.pairs
        registry = engine.registry
        inst = registry.instance("batch")
        self._m_reads = registry.counter("fast.batch.reads", inst=inst)
        self._m_writes = registry.counter("fast.batch.writes", inst=inst)
        self._m_flushes = registry.counter("fast.batch.flushes", inst=inst)
        self._m_groups = registry.counter("fast.batch.groups", inst=inst)
        self._m_fallback = registry.counter(
            "fast.fallback.scalar", inst=inst
        )
        #: queued operations: ("write", address, data) / ("read", address)
        self._queue: list[tuple[str, int, bytes | None]] = []

    @property
    def mode(self) -> str:
        return self.kernels.mode

    @property
    def paranoid_sample(self) -> int:
        return self.kernels.paranoid_sample

    # -- queueing ----------------------------------------------------------

    def queue_write(self, address: int, data: bytes) -> None:
        """Queue one 64-byte block write (validated immediately)."""
        if len(data) != BLOCK_BYTES:
            raise ValueError(f"data must be {BLOCK_BYTES} bytes")
        self.engine._block_index(address)
        self._queue.append(("write", address, bytes(data)))

    def queue_read(self, address: int) -> None:
        """Queue one block read (validated immediately)."""
        self.engine._block_index(address)
        self._queue.append(("read", address, None))

    def write_many(self, writes: Iterable[tuple[int, bytes]]) -> None:
        """Queue and flush a sequence of (address, data) writes."""
        for address, data in writes:
            self.queue_write(address, data)
        self.flush()

    def read_many(self, addresses: Sequence[int]) -> list[ReadResult]:
        """Flush pending work, then read ``addresses`` as one batch."""
        self.flush()
        for address in addresses:
            self.queue_read(address)
        return self.flush()

    def flush(self) -> list[ReadResult]:
        """Run the queue through the kernels; returns queued reads' results.

        On :class:`IntegrityError` the failing operation raises exactly as
        the scalar loop would at that point; operations queued after it
        are discarded.
        """
        queue, self._queue = self._queue, []
        if not queue:
            return []
        self._m_flushes.inc()
        results: list[ReadResult] = []
        start = 0
        while start < len(queue):
            op = queue[start][0]
            stop = start
            while stop < len(queue) and queue[stop][0] == op:
                stop += 1
            if op == "write":
                self._flush_writes(
                    [(address, data) for _, address, data in queue[start:stop]]
                )
            else:
                results.extend(
                    self._flush_reads(
                        [address for _, address, _ in queue[start:stop]]
                    )
                )
            start = stop
        return results

    # -- write path --------------------------------------------------------

    def _serialize_group(self, group: int) -> bytes:
        if self._has_counter_kernels:
            metadata = self.kernels.run("counters.encode", group)
            assert isinstance(metadata, bytes)
            return metadata
        return self.engine.scheme.group_metadata(group)

    def _commit_group(self, group: int) -> None:
        engine = self.engine
        metadata = self._serialize_group(group)
        engine.counter_storage[group] = metadata
        engine.tree.update_leaf(group, engine._pad_leaf(metadata))
        if engine.persist is not None and engine.persist.in_txn:
            engine.persist.record_meta(group, metadata)

    def _flush_writes(self, writes: list[tuple[int, bytes]]) -> None:
        """One write run; with persistence attached, one group-commit txn.

        The whole run -- including any scalar-fallback re-encryptions,
        whose ``_store_block``/``_commit_metadata`` calls mirror into
        the open transaction automatically -- seals as a single
        :class:`~repro.persist.journal.TxnRecord`.  Any failure before
        the seal aborts the transaction: nothing reached the store, so
        the batch rolls back atomically.
        """
        engine = self.engine
        persist = engine.persist
        if persist is None:
            self._run_writes(writes)
            return
        if persist.in_txn:
            raise ConfigError(
                "cannot flush a batch inside an open journal "
                "transaction: group commit opens one transaction per "
                "write run; finish the scalar engine.write (or nested "
                "flush) first -- the working order is "
                "SecureMemory(+durability) -> BatchSecureMemory with "
                "flush() between, not inside, scalar transactions"
            )
        persist.begin_txn()
        try:
            global_reencrypt = self._run_writes(writes)
        except BaseException:
            persist.abort_txn()
            raise
        force = (
            global_reencrypt
            and persist.config.checkpoint_on_global_reencrypt
        )
        persist.commit_txn(
            root=engine.tree.root_digest(),
            scheme_epoch=getattr(engine.scheme, "epoch", 0),
            force_checkpoint=force,
            writes=len(writes),
        )

    def _run_writes(self, writes: list[tuple[int, bytes]]) -> bool:
        """The write-run data path; True when a global re-encrypt fired."""
        engine = self.engine
        scheme = engine.scheme
        global_reencrypt = False
        self._m_writes.inc(len(writes))
        #: writes encrypted/stored lazily: (block, address, nonce, data)
        pending: list[tuple[int, int, int, bytes]] = []
        #: groups whose counter_storage lags the scheme state
        stale: dict[int, None] = {}
        #: groups needing a final tree-leaf commit
        dirty: dict[int, None] = {}
        for address, data in writes:
            block = engine._block_index(address)
            group = scheme.group_of(block)
            if stale:
                # What the scalar per-write commit would have left in
                # storage -- the overflow handlers read old counters here.
                for lagging in stale:
                    engine.counter_storage[lagging] = self._serialize_group(
                        lagging
                    )
                stale.clear()
            outcome = scheme.on_write(block)
            engine.counters.writes += 1
            if outcome.has(CounterEvent.GLOBAL_RE_ENCRYPT):
                global_reencrypt = True
                self._flush_pending(pending)
                pending = []
                engine._trace_reencrypt("engine.global_reencrypt", address)
                engine._global_reencrypt(skip_block=block)
                self._m_fallback.inc()
                # The global handler commits storage + tree for every
                # group from current scheme state.
                dirty.clear()
            elif outcome.reencrypted_group is not None:
                self._flush_pending(pending)
                pending = []
                engine._trace_reencrypt(
                    "engine.group_reencrypt",
                    address,
                    group=outcome.reencrypted_group,
                )
                engine._reencrypt_group(
                    outcome.reencrypted_group,
                    outcome.group_counter,
                    skip_block=block,
                )
                engine.counters.group_reencryptions += 1
                self._m_fallback.inc()
            pending.append(
                (block, address, engine._nonce(outcome.counter), data)
            )
            stale[group] = None
            dirty[group] = None
        self._flush_pending(pending)
        self._m_groups.inc(len(dirty))
        for group in dirty:
            self._commit_group(group)
        return global_reencrypt

    def _flush_pending(
        self, pending: list[tuple[int, int, int, bytes]]
    ) -> None:
        if not pending:
            return
        engine = self.engine
        in_txn = engine.persist is not None and engine.persist.in_txn
        count = len(pending)
        addresses = [entry[1] for entry in pending]
        nonces = [entry[2] for entry in pending]
        data = np.frombuffer(
            b"".join(entry[3] for entry in pending), dtype=np.uint8
        ).reshape(count, BLOCK_BYTES)
        ciphertexts = self.kernels.run(
            "ctr.encrypt", data, nonces, addresses, blocks=count
        )
        tags = self.kernels.run(
            "mac.tags", ciphertexts, addresses, nonces, blocks=count
        )
        if engine.config.mac_in_ecc:
            hamming = engine.codec.mac_hamming
            for row, entry, tag in zip(ciphertexts, pending, tags):
                ciphertext = row.tobytes()
                tag_value = int(tag)
                engine.ciphertexts[entry[0]] = ciphertext
                field = EccField(
                    mac=tag_value,
                    mac_check=hamming.encode(tag_value),
                    ct_parity=parity_of_bytes(ciphertext),
                )
                engine.ecc_fields[entry[0]] = field
                if in_txn:
                    engine.persist.record_data(
                        entry[0],
                        DataImage(ciphertext=ciphertext, ecc=field.pack()),
                    )
        else:
            for row, entry, tag in zip(ciphertexts, pending, tags):
                ciphertext = row.tobytes()
                tag_value = int(tag)
                engine.ciphertexts[entry[0]] = ciphertext
                engine.mac_store[entry[0]] = tag_value
                if in_txn:
                    engine.persist.record_data(
                        entry[0],
                        DataImage(ciphertext=ciphertext, mac=tag_value),
                    )

    # -- read path ---------------------------------------------------------

    def _flush_reads(self, addresses: list[int]) -> list[ReadResult]:
        engine = self.engine
        scheme = engine.scheme
        self._m_reads.inc(len(addresses))
        blocks = [engine._block_index(address) for address in addresses]

        # Per-group pre-pass: verify the tree leaf once, decode counters.
        group_counters: dict[int, list[int] | None] = {}
        for block in blocks:
            group = scheme.group_of(block)
            if group in group_counters:
                continue
            metadata = engine._stored_metadata(group)
            if not engine.tree.verify_leaf(group, engine._pad_leaf(metadata)):
                group_counters[group] = None  # raises at its queue position
            elif self._has_counter_kernels:
                group_counters[group] = self.kernels.run(
                    "counters.decode", metadata
                )
            else:
                group_counters[group] = scheme.decode_metadata(metadata)
        self._m_groups.inc(len(group_counters))

        # Classification pre-pass (no engine mutation): "tree" failures,
        # scalar fallbacks, and candidates for batched verify+decrypt.
        scalar_all = engine.read_perturb is not None
        entries: list[tuple[str, int, bytes, int]] = []
        for address, block in zip(addresses, blocks):
            counters = group_counters[scheme.group_of(block)]
            if counters is None:
                entries.append(("tree", 0, b"", 0))
                continue
            if scalar_all or block not in engine.ciphertexts:
                # Untouched blocks lazily initialize storage on read; let
                # the scalar path do that so pre-pass stays mutation-free.
                entries.append(("scalar", 0, b"", 0))
                continue
            nonce = engine._nonce(counters[scheme.slot_of(block)])
            ciphertext = engine.ciphertexts[block]
            if engine.config.mac_in_ecc:
                ecc = engine.ecc_fields.get(block)
                if ecc is None:
                    entries.append(("scalar", 0, b"", 0))
                    continue
                recovery = engine.codec.recover_mac(ecc)
                if recovery.status is not DecodeStatus.CLEAN:
                    entries.append(("scalar", 0, b"", 0))
                    continue
                entries.append(("verify", nonce, ciphertext, recovery.data))
            else:
                stored = engine.mac_store.get(block)
                if stored is None:
                    entries.append(("scalar", 0, b"", 0))
                else:
                    entries.append(("verify", nonce, ciphertext, stored))

        # Batched MAC verification; mismatches fall back to scalar.
        verify_at = [i for i, e in enumerate(entries) if e[0] == "verify"]
        decrypted: dict[int, bytes] = {}
        if verify_at:
            count = len(verify_at)
            messages = np.frombuffer(
                b"".join(entries[i][2] for i in verify_at), dtype=np.uint8
            ).reshape(count, BLOCK_BYTES)
            v_addresses = [addresses[i] for i in verify_at]
            v_nonces = [entries[i][1] for i in verify_at]
            tags = self.kernels.run(
                "mac.tags", messages, v_addresses, v_nonces, blocks=count
            )
            clean_rows = [
                row
                for row, (position, tag) in enumerate(zip(verify_at, tags))
                if int(tag) == entries[position][3]
            ]
            clean_row_set = frozenset(clean_rows)
            for row, position in enumerate(verify_at):
                if row not in clean_row_set:
                    entries[position] = ("scalar", 0, b"", 0)
            if clean_rows:
                plains = self.kernels.run(
                    "ctr.encrypt",
                    messages[clean_rows],
                    [v_nonces[row] for row in clean_rows],
                    [v_addresses[row] for row in clean_rows],
                    blocks=len(clean_rows),
                )
                for row, plain in zip(clean_rows, plains):
                    decrypted[verify_at[row]] = plain.tobytes()

        # Queue-order pass: mutations and raises happen exactly where the
        # scalar loop would have performed them.
        results: list[ReadResult] = []
        for position, entry in enumerate(entries):
            kind = entry[0]
            if kind == "tree":
                engine.counters.reads += 1
                engine._m_tree_fails.inc()
                raise IntegrityError(
                    "tree",
                    addresses[position],
                    "counter storage failed tree verification",
                )
            if kind == "scalar":
                self._m_fallback.inc()
                results.append(engine.read(addresses[position]))
                continue
            engine.counters.reads += 1
            engine._m_mac_checks.inc()
            results.append(
                ReadResult(
                    data=decrypted[position], outcome=CheckOutcome.CLEAN
                )
            )
        return results


__all__ = ["BatchSecureMemory"]
