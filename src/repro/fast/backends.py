"""Pluggable keystream backends behind one registry.

The engine's counter-mode construction (paper Section 2.1) is fixed: each
64-byte block's keystream is the block cipher applied to four nonce
blocks laid out as ``56-bit counter LE | 0x00 | 48-bit address LE |
16-bit segment LE``.  What *varies* is how that block cipher is
executed, and that choice is what a :class:`KeystreamBackend` names:

* ``reference`` -- the pure-python table AES, one block at a time.  The
  ground truth every other AES-family backend must match bit for bit.
* ``fast``      -- the same table AES scalar path plus the numpy
  byte-plane :class:`~repro.fast.aes_batch.BatchAes128` for batches.
* ``aesni``     -- hardware AES via the ``cryptography`` package.  CTR
  keystream blocks are by definition the ECB encryption of the counter
  blocks, so a single ECB call over the numpy-assembled nonce array
  reproduces the engine's little-endian segment layout exactly (the
  library's own CTR mode cannot: it increments the 16-byte counter
  big-endian, while the segment lane at bytes 14..15 is little-endian).
* ``splitmix``  -- the non-cryptographic SplitMix64 simulation PRF
  (previously spelled ``keystream_mode="fast"``); a different *family*,
  so its pads intentionally differ from the AES backends'.

Backends within the ``aes`` family are interchangeable at the bit level;
``tests/crypto/test_kat.py`` pins every registered backend to golden
vectors and ``tests/fast/test_backend_differential.py`` property-tests
cross-backend equality, so a backend cannot register without proving
itself.  The legacy config spelling ``keystream_mode="aes"`` resolves to
``fast`` (identical bytes and, for scalar engines, identical code path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.crypto.aes import AES128
from repro.crypto.prf import XorShiftKeystream
from repro.fast.aes_batch import BatchAes128
from repro.fast.prf_batch import BatchSplitMix64, splitmix64_batch
from repro.lint.contracts import ADDRESS_BITS, BLOCK_BYTES, COUNTER_NONCE_BITS

_AES_BLOCK = 16
_SEGMENTS = BLOCK_BYTES // _AES_BLOCK
_MASK64 = (1 << 64) - 1
_COUNTER_MASK = (1 << COUNTER_NONCE_BITS) - 1
_ADDRESS_MASK = (1 << ADDRESS_BITS) - 1
_WORDS_PER_BLOCK = BLOCK_BYTES // 8

try:  # pragma: no cover - exercised via backend availability below
    from cryptography.hazmat.primitives.ciphers import (
        Cipher as _CgCipher,
        algorithms as _cg_algorithms,
        modes as _cg_modes,
    )

    _CRYPTOGRAPHY_ERROR: Optional[str] = None
except Exception as exc:  # pragma: no cover - depends on environment
    _CgCipher = None  # type: ignore[assignment, misc]
    _cg_algorithms = None  # type: ignore[assignment]
    _cg_modes = None  # type: ignore[assignment]
    _CRYPTOGRAPHY_ERROR = f"python package 'cryptography' unavailable: {exc}"


class BackendUnavailable(RuntimeError):
    """A registered backend cannot run in this environment."""


class BlockEncryptor(Protocol):
    """AES-family execution strategy: encrypt raw 16-byte blocks."""

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""

    def encrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Encrypt an ``(M, 16)`` uint8 array of blocks."""


class TableAesEncryptor:
    """Pure-python table AES, scalar even for batches (the reference)."""

    def __init__(self, key: bytes) -> None:
        self._aes = AES128(key)

    def encrypt_block(self, block: bytes) -> bytes:
        return self._aes.encrypt_block(block)

    def encrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        out = b"".join(self._aes.encrypt_block(bytes(row)) for row in blocks)
        return np.frombuffer(out, dtype=np.uint8).reshape(-1, _AES_BLOCK)


class BatchTableAesEncryptor:
    """Table AES scalar path + numpy byte-plane batches (one schedule)."""

    def __init__(self, key: bytes) -> None:
        self._aes = AES128(key)
        self._batch = BatchAes128.from_scalar(self._aes)

    def encrypt_block(self, block: bytes) -> bytes:
        return self._aes.encrypt_block(block)

    def encrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        return self._batch.encrypt_blocks(blocks)


class AesNiEncryptor:
    """Hardware AES through ``cryptography`` (OpenSSL AES-NI).

    A single long-lived ECB context is reused for every call: ECB has no
    chaining state, so ``update`` on full blocks is a pure block-cipher
    map and the context never needs finalizing.
    """

    def __init__(self, key: bytes) -> None:
        if _CRYPTOGRAPHY_ERROR is not None:
            raise BackendUnavailable(_CRYPTOGRAPHY_ERROR)
        cipher = _CgCipher(_cg_algorithms.AES(bytes(key)), _cg_modes.ECB())
        self._ctx = cipher.encryptor()

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != _AES_BLOCK:
            raise ValueError("block must be 16 bytes")
        return self._ctx.update(bytes(block))

    def encrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        flat = np.ascontiguousarray(blocks, dtype=np.uint8)
        out = self._ctx.update(flat.tobytes())
        return np.frombuffer(out, dtype=np.uint8).reshape(-1, _AES_BLOCK)


def aes_nonce_block(counter: int, address: int, segment: int) -> bytes:
    """One scalar nonce block: 7-byte counter | 0 | 6-byte addr | 2-byte seg."""
    return (
        (counter & _COUNTER_MASK).to_bytes(7, "little")
        + b"\x00"
        + (address & _ADDRESS_MASK).to_bytes(6, "little")
        + segment.to_bytes(2, "little")
    )


def aes_nonce_blocks(
    counters: Sequence[int], addresses: Sequence[int]
) -> np.ndarray:
    """Nonce blocks for N 64-byte pads: ``(N, 4, 16)`` uint8.

    Byte-for-byte the batched twin of :func:`aes_nonce_block`, with the
    segment index varying along axis 1.
    """
    n = len(counters)
    c = np.array([v & _COUNTER_MASK for v in counters], dtype=np.uint64)
    a = np.array([v & _ADDRESS_MASK for v in addresses], dtype=np.uint64)
    blocks = np.zeros((n, _SEGMENTS, _AES_BLOCK), dtype=np.uint8)
    for k in range(7):
        blocks[:, :, k] = (
            (c >> np.uint64(8 * k)) & np.uint64(0xFF)
        ).astype(np.uint8)[:, None]
    for k in range(6):
        blocks[:, :, 8 + k] = (
            (a >> np.uint64(8 * k)) & np.uint64(0xFF)
        ).astype(np.uint8)[:, None]
    blocks[:, :, 14] = np.arange(_SEGMENTS, dtype=np.uint8)
    return blocks


class AesCtrKeystream:
    """The Section 2.1 keystream construction over any AES encryptor."""

    family = "aes"

    def __init__(self, encryptor: BlockEncryptor) -> None:
        self.encryptor = encryptor

    def keystream(self, counter: int, address: int, length: int) -> bytes:
        out = bytearray()
        segment = 0
        while len(out) < length:
            block = aes_nonce_block(counter, address, segment)
            out.extend(self.encryptor.encrypt_block(block))
            segment += 1
        return bytes(out[:length])

    def pads(
        self, counters: Sequence[int], addresses: Sequence[int]
    ) -> np.ndarray:
        """64-byte keystream pads for N nonces: ``(N, 64)`` uint8."""
        blocks = aes_nonce_blocks(counters, addresses)
        encrypted = self.encryptor.encrypt_blocks(
            blocks.reshape(-1, _AES_BLOCK)
        )
        return encrypted.reshape(len(counters), BLOCK_BYTES)


class SplitmixKeystream:
    """The simulation-speed SplitMix64 PRF keystream (non-cryptographic)."""

    family = "splitmix"

    def __init__(self, key: bytes) -> None:
        self._scalar = XorShiftKeystream(key)
        self._prf = BatchSplitMix64(self._scalar._prf)

    def keystream(self, counter: int, address: int, length: int) -> bytes:
        seed = ((counter & _MASK64) << 64) | (address & _MASK64)
        return self._scalar.keystream(seed, length)

    def pads(
        self, counters: Sequence[int], addresses: Sequence[int]
    ) -> np.ndarray:
        n = len(counters)
        # Scalar seed = counter << 64 | address, split back into
        # high = counter, low = address inside XorShiftKeystream.
        high = np.array([v & _MASK64 for v in counters], dtype=np.uint64)
        low = np.array([v & _MASK64 for v in addresses], dtype=np.uint64)
        word_index = np.arange(_WORDS_PER_BLOCK, dtype=np.uint64)
        tweak = splitmix64_batch(high[:, None] ^ word_index)
        words = self._prf.value(low[:, None] ^ tweak)
        return words.astype("<u8").view(np.uint8).reshape(n, BLOCK_BYTES)


def _always_available() -> Optional[str]:
    return None


def _aesni_availability() -> Optional[str]:
    return _CRYPTOGRAPHY_ERROR


@dataclass(frozen=True)
class KeystreamBackend:
    """One named keystream execution strategy in the registry."""

    name: str
    family: str  # "aes" | "splitmix"
    summary: str
    encryptor_factory: Optional[Callable[[bytes], BlockEncryptor]] = None
    availability: Callable[[], Optional[str]] = field(
        default=_always_available
    )

    def availability_error(self) -> Optional[str]:
        """``None`` when usable, else a human-readable reason."""
        return self.availability()

    def available(self) -> bool:
        return self.availability_error() is None

    def build_encryptor(self, key: bytes) -> BlockEncryptor:
        """Raw block encryptor for this backend (AES family only)."""
        if self.encryptor_factory is None:
            raise BackendUnavailable(
                f"backend {self.name!r} ({self.family} family) has no "
                "block encryptor"
            )
        error = self.availability_error()
        if error is not None:
            raise BackendUnavailable(f"backend {self.name!r}: {error}")
        return self.encryptor_factory(key)

    def build(self, key: bytes):
        """Keystream engine (``keystream``/``pads``) keyed by ``key``."""
        if self.family == "aes":
            return AesCtrKeystream(self.build_encryptor(key))
        error = self.availability_error()
        if error is not None:  # pragma: no cover - splitmix always works
            raise BackendUnavailable(f"backend {self.name!r}: {error}")
        return SplitmixKeystream(key)


_REGISTRY: Dict[str, KeystreamBackend] = {}

#: Legacy spellings accepted everywhere a backend name is:
#: ``"aes"`` predates the registry and meant "the real AES construction,
#: batched where batching exists" -- exactly what ``fast`` is now.
BACKEND_ALIASES = {"aes": "fast"}


def register_backend(backend: KeystreamBackend) -> KeystreamBackend:
    """Add a backend to the registry (duplicate names are an error)."""
    if backend.name in _REGISTRY or backend.name in BACKEND_ALIASES:
        raise ValueError(f"duplicate keystream backend {backend.name!r}")
    if backend.family not in ("aes", "splitmix"):
        raise ValueError(f"unknown backend family {backend.family!r}")
    _REGISTRY[backend.name] = backend
    return backend


def keystream_backends() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


def resolve_backend(name: str) -> KeystreamBackend:
    """Look up a backend by name (legacy aliases accepted)."""
    canonical = BACKEND_ALIASES.get(name, name)
    try:
        return _REGISTRY[canonical]
    except KeyError:
        choices = ", ".join(sorted(_REGISTRY) + sorted(BACKEND_ALIASES))
        raise ValueError(
            f"unknown keystream backend {name!r} (choices: {choices})"
        ) from None


register_backend(
    KeystreamBackend(
        name="reference",
        family="aes",
        summary="pure-python table AES, scalar even for batches",
        encryptor_factory=TableAesEncryptor,
    )
)
register_backend(
    KeystreamBackend(
        name="fast",
        family="aes",
        summary="table AES scalar path + numpy byte-plane batches",
        encryptor_factory=BatchTableAesEncryptor,
    )
)
register_backend(
    KeystreamBackend(
        name="aesni",
        family="aes",
        summary="hardware AES-NI via the 'cryptography' package",
        encryptor_factory=AesNiEncryptor,
        availability=_aesni_availability,
    )
)
register_backend(
    KeystreamBackend(
        name="splitmix",
        family="splitmix",
        summary="non-cryptographic SplitMix64 simulation PRF",
    )
)


__all__ = [
    "AesCtrKeystream",
    "AesNiEncryptor",
    "BACKEND_ALIASES",
    "BackendUnavailable",
    "BatchTableAesEncryptor",
    "BlockEncryptor",
    "KeystreamBackend",
    "SplitmixKeystream",
    "TableAesEncryptor",
    "aes_nonce_block",
    "aes_nonce_blocks",
    "keystream_backends",
    "register_backend",
    "resolve_backend",
]
