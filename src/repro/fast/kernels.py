"""The kernel-pair table: every fast kernel bound to its scalar reference.

A :class:`KernelPair` names one batched kernel and the scalar loop it
claims to be bit-identical to.  :class:`KernelTable` dispatches calls by
mode:

* ``fast``      -- run the batched kernel (production),
* ``reference`` -- run the scalar loop (debugging / baseline timing),
* ``paranoid``  -- run *both* on every call, compare, and raise
  :class:`KernelDivergence` on the first mismatch (the acceptance mode:
  a full figure-8 run in paranoid mode must complete with zero
  divergences).

The table for a given engine is built by :func:`build_kernel_table`,
which binds each pair to that engine's cipher, MAC, corrector and
counter-scheme geometry.  Calls are metered under ``fast.kernel.*`` /
``fast.paranoid.*`` in the active metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.ecc_mac.correction import FlipAndCheckCorrector
from repro.crypto.ctr import CtrModeCipher
from repro.crypto.mac import CarterWegmanMac
from repro.fast.ctr_batch import BatchCtrCipher
from repro.fast.ecc_batch import BatchFlipAndCheck
from repro.fast.mac_batch import BatchCarterWegmanMac
from repro.fast import counters_batch
from repro.crypto.prf import splitmix64
from repro.obs.metrics import get_registry

MODES = ("fast", "reference", "paranoid")
_SEED_MASK = (1 << 64) - 1


class KernelDivergence(AssertionError):
    """A paranoid-mode cross-check found fast != reference."""

    def __init__(self, kernel: str, detail: str) -> None:
        super().__init__(
            f"kernel {kernel!r}: fast and reference outputs diverge ({detail})"
        )
        self.kernel = kernel


def _default_equal(fast: Any, reference: Any) -> bool:
    if isinstance(fast, np.ndarray) or isinstance(reference, np.ndarray):
        return bool(np.array_equal(np.asarray(fast), np.asarray(reference)))
    return bool(fast == reference)


@dataclass(frozen=True)
class KernelPair:
    """One fast kernel and the scalar reference it must match."""

    name: str
    fast: Callable[..., Any]
    reference: Callable[..., Any]
    equal: Callable[[Any, Any], bool] = field(default=_default_equal)


#: default seed for the sampled-paranoid schedule (any fixed value works;
#: determinism is the requirement, not secrecy)
SAMPLE_SEED = 0x0DAC2018


class KernelTable:
    """Mode-dispatched registry of kernel pairs.

    ``paranoid_sample=N`` (with ``mode="fast"``) enables *sampled*
    paranoid verification: every Nth kernel call -- counted across the
    table, on a seeded deterministic schedule -- also runs the scalar
    reference and cross-checks the results.  The schedule's phase is
    derived from ``sample_seed`` so repeated runs check the same calls,
    the sampling rate is exactly 1/N, and a *persistent* kernel
    corruption is caught within N calls.
    """

    def __init__(
        self,
        pairs: Sequence[KernelPair],
        mode: str = "fast",
        paranoid_sample: int = 0,
        sample_seed: int = SAMPLE_SEED,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown kernel mode {mode!r}")
        if paranoid_sample < 0:
            raise ValueError("paranoid_sample must be >= 0")
        if paranoid_sample and mode != "fast":
            raise ValueError(
                "paranoid_sample only applies to mode='fast' "
                "(reference/paranoid modes already check every call)"
            )
        self.mode = mode
        self.paranoid_sample = paranoid_sample
        self.sample_seed = sample_seed
        self._calls_seen = 0
        self._sample_phase = (
            splitmix64(sample_seed & _SEED_MASK) % paranoid_sample
            if paranoid_sample
            else 0
        )
        self.pairs: dict[str, KernelPair] = {}
        for pair in pairs:
            if pair.name in self.pairs:
                raise ValueError(f"duplicate kernel pair {pair.name!r}")
            self.pairs[pair.name] = pair
        registry = get_registry()
        inst = registry.instance("kernels")
        self._m_calls = registry.counter("fast.kernel.calls", inst=inst)
        self._m_blocks = registry.counter("fast.kernel.blocks", inst=inst)
        self._m_checks = registry.counter("fast.paranoid.checks", inst=inst)
        self._m_divergence = registry.counter(
            "fast.paranoid.divergence", inst=inst
        )
        self._m_sampled = registry.counter("fast.paranoid.sampled", inst=inst)
        self._m_skipped = registry.counter("fast.paranoid.skipped", inst=inst)

    def run(self, name: str, *args: Any, blocks: int = 1) -> Any:
        """Execute one kernel under the table's mode."""
        pair = self.pairs[name]
        if self.mode == "reference":
            return pair.reference(*args)
        result = pair.fast(*args)
        self._m_calls.inc()
        self._m_blocks.inc(blocks)
        check = self.mode == "paranoid"
        if not check and self.paranoid_sample:
            index = self._calls_seen
            self._calls_seen += 1
            if index % self.paranoid_sample == self._sample_phase:
                check = True
                self._m_sampled.inc()
            else:
                self._m_skipped.inc()
        if check:
            reference = pair.reference(*args)
            self._m_checks.inc()
            if not pair.equal(result, reference):
                self._m_divergence.inc()
                raise KernelDivergence(
                    name, f"batch of {blocks} block(s)"
                )
        return result


# -- scalar reference loops -------------------------------------------------


def _reference_ctr_encrypt(
    cipher: CtrModeCipher,
) -> Callable[[np.ndarray, Sequence[int], Sequence[int]], np.ndarray]:
    def encrypt(
        data: np.ndarray, counters: Sequence[int], addresses: Sequence[int]
    ) -> np.ndarray:
        out = [
            cipher.encrypt(bytes(row), counter, address)
            for row, counter, address in zip(data, counters, addresses)
        ]
        return np.frombuffer(b"".join(out), dtype=np.uint8).reshape(
            len(out), -1
        )

    return encrypt


def _reference_mac_tags(
    mac: CarterWegmanMac,
) -> Callable[[np.ndarray, Sequence[int], Sequence[int]], np.ndarray]:
    def tags(
        messages: np.ndarray,
        addresses: Sequence[int],
        counters: Sequence[int],
    ) -> np.ndarray:
        return np.array(
            [
                mac.tag(bytes(row), address, counter)
                for row, address, counter in zip(
                    messages, addresses, counters
                )
            ],
            dtype=np.uint64,
        )

    return tags


def build_kernel_table(
    cipher: CtrModeCipher,
    mac: CarterWegmanMac,
    corrector: FlipAndCheckCorrector,
    scheme: Any,
    mode: str = "fast",
    paranoid_sample: int = 0,
    sample_seed: int = SAMPLE_SEED,
) -> KernelTable:
    """Bind the full kernel-pair set to one engine's primitives.

    The crypto reference sides are *independent twins* of the production
    primitives (same key, pure-python implementation), so paranoid and
    sampled-paranoid checks on an accelerated backend (numpy batches,
    AES-NI) compare against table AES rather than the code under test.
    """
    batch_cipher = BatchCtrCipher(cipher)
    batch_mac = BatchCarterWegmanMac(mac)
    batch_corrector = BatchFlipAndCheck(corrector)
    pairs = [
        KernelPair(
            name="ctr.encrypt",
            fast=batch_cipher.xor_blocks,
            reference=_reference_ctr_encrypt(cipher.reference_twin()),
        ),
        KernelPair(
            name="mac.tags",
            fast=batch_mac.tags,
            reference=_reference_mac_tags(mac.reference_twin()),
        ),
        KernelPair(
            name="ecc.flip_and_check",
            fast=batch_corrector.correct_accelerated,
            reference=corrector.correct_accelerated,
        ),
    ]
    scheme_name = getattr(scheme, "name", None)
    if scheme_name == "delta":
        pairs.append(
            KernelPair(
                name="counters.decode",
                fast=lambda data: counters_batch.delta_decode(
                    data,
                    scheme.reference_bits,
                    scheme.delta_bits,
                    scheme.blocks_per_group,
                ),
                reference=scheme.decode_metadata,
            )
        )
        pairs.append(
            KernelPair(
                name="counters.encode",
                fast=lambda group: counters_batch.delta_encode(
                    scheme.reference(group),
                    scheme.deltas(group),
                    scheme.reference_bits,
                    scheme.delta_bits,
                ),
                reference=scheme.group_metadata,
            )
        )
    elif scheme_name == "dual_length":
        pairs.append(
            KernelPair(
                name="counters.decode",
                fast=lambda data: counters_batch.dual_length_decode(
                    data,
                    scheme.reference_bits,
                    scheme.base_delta_bits,
                    scheme.extension_bits,
                    scheme.blocks_per_group,
                    scheme.deltas_per_delta_group,
                ),
                reference=scheme.decode_metadata,
            )
        )
        pairs.append(
            KernelPair(
                name="counters.encode",
                fast=lambda group: counters_batch.dual_length_encode(
                    scheme.reference(group),
                    scheme.deltas(group),
                    scheme.widened_delta_group(group),
                    scheme.reference_bits,
                    scheme.base_delta_bits,
                    scheme.extension_bits,
                    scheme.deltas_per_delta_group,
                ),
                reference=scheme.group_metadata,
            )
        )
    return KernelTable(
        pairs,
        mode=mode,
        paranoid_sample=paranoid_sample,
        sample_seed=sample_seed,
    )


__all__ = [
    "KernelDivergence",
    "KernelPair",
    "KernelTable",
    "MODES",
    "SAMPLE_SEED",
    "build_kernel_table",
]
