"""EngineStack: fast × durable × resilient × observed, composed.

The subsystems each wrap one
:class:`~repro.core.engine.secure_memory.SecureMemory`, and until this
module they were mutually exclusive in practice.  ``EngineStack`` builds
the one blessed composition over a *single* engine:

1. **observed** -- one :class:`~repro.obs.metrics.MetricRegistry`
   underneath everything, so every layer's metrics land in one plane;
2. **core + durable** -- the ``SecureMemory`` data path, with an
   optional :class:`~repro.persist.manager.PersistenceManager` attached
   (write-ahead journal + epoch checkpoints over a
   :class:`~repro.persist.store.DurableStore`);
3. **fast** -- a :class:`~repro.fast.batch_memory.BatchSecureMemory`
   facade over the *same* engine; with durability attached each flushed
   write run seals as one group-commit journal transaction;
4. **resilient** -- a :class:`~repro.resilience.runtime.ResilientMemory`
   on top: logical->physical translation through the quarantine map,
   staged recovery reads, CE/DUE retirement, error logging.

Layer-ordering rules the constructor enforces by construction:

* durability attaches to the core engine, *below* batching -- the batch
  facade mirrors into the engine's open transaction, never the reverse;
* address indirection sits *above* batching: the stack translates
  logical addresses at queue time, so the batch queue and the journal
  only ever see physical addresses (what recovery replays);
* reads drain the batch queue first (writes acknowledge before any
  read observes them) and then go through the resilient read path when
  present -- recovery-policy reads are inherently scalar, and the batch
  read path defers to scalar fallbacks whenever a perturb hook is
  installed, so nothing is lost by routing around it.

Crash recovery composes the same way: :meth:`EngineStack.recover`
rebuilds the engine from the store via the persist state machine, then
re-wraps it and replays the recovered resilience events idempotently.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.engine.config import EngineConfig
from repro.core.engine.secure_memory import ReadResult, SecureMemory
from repro.fast.batch_memory import BatchSecureMemory
from repro.obs.metrics import MetricRegistry, get_registry
from repro.persist.config import DurabilityConfig
from repro.persist.manager import PersistenceManager
from repro.persist.recovery import RecoveryReport
from repro.persist.recovery import recover as _recover_engine
from repro.persist.store import DurableStore
from repro.resilience.recovery import RecoveredRead
from repro.resilience.runtime import ResilientMemory


class EngineStack:
    """One secure memory that is fast, durable, and fault-tolerant.

    ``resilience`` is ``None`` (layer off) or a dict of
    :class:`ResilientMemory` keyword options (``spare_blocks``,
    ``ce_threshold``, ``due_threshold``, ``retry_policy``,
    ``errlog_capacity``); an empty dict enables the layer with defaults.

    Addresses are *logical* when the resilient layer is on (capacity
    shrinks by the spare pool), physical otherwise.  ``read`` returns a
    :class:`RecoveredRead` when resilient, else a :class:`ReadResult`.
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        key: bytes | None = None,
        *,
        fast: bool = True,
        kernel_mode: str = "fast",
        paranoid_sample: int = 0,
        durability: DurabilityConfig | None = None,
        store: DurableStore | None = None,
        resilience: dict[str, Any] | None = None,
        registry: MetricRegistry | None = None,
        _engine: SecureMemory | None = None,
    ) -> None:
        if _engine is not None:
            registry = registry if registry is not None else _engine.registry
            engine = _engine
        else:
            if config is None or key is None:
                raise ValueError("config and key are required")
            registry = registry if registry is not None else get_registry()
            engine = SecureMemory(config, key, registry=registry)
            if durability is not None and durability.enabled:
                engine.attach_persistence(
                    PersistenceManager(
                        durability, store=store, registry=registry
                    )
                )
        self.registry = registry
        self.engine = engine
        self.batch: BatchSecureMemory | None = (
            BatchSecureMemory(
                engine, mode=kernel_mode, paranoid_sample=paranoid_sample
            )
            if fast
            else None
        )
        self.resilient: ResilientMemory | None = (
            ResilientMemory(memory=engine, registry=registry, **resilience)
            if resilience is not None
            else None
        )
        self._m_writes = registry.counter("stack.writes")
        self._m_reads = registry.counter("stack.reads")
        self._m_flushes = registry.counter("stack.flushes")
        self._m_recoveries = registry.counter("stack.recoveries")

    # -- geometry -----------------------------------------------------------

    @property
    def persist(self) -> PersistenceManager | None:
        return self.engine.persist

    @property
    def capacity_blocks(self) -> int:
        """Blocks the stack serves (logical when resilient)."""
        if self.resilient is not None:
            return self.resilient.capacity_blocks
        return self.engine.scheme.total_blocks

    def _physical(self, address: int) -> int:
        if self.resilient is not None:
            return self.resilient.physical_address(address)
        return address

    # -- data path ----------------------------------------------------------

    def write(self, address: int, data: bytes) -> None:
        """Write one block: queued (fast) until :meth:`flush` seals it.

        Without the fast layer the write goes straight through (and,
        with durability, seals its own scalar transaction).
        """
        self._m_writes.inc()
        if self.batch is not None:
            self.batch.queue_write(self._physical(address), data)
        elif self.resilient is not None:
            self.resilient.write(address, data)
        else:
            self.engine.write(address, data)

    def write_many(self, writes: Iterable[tuple[int, bytes]]) -> None:
        """Queue a write run and flush it -- one group-commit txn."""
        for address, data in writes:
            self.write(address, data)
        self.flush()

    def flush(self) -> None:
        """Drain the batch queue; the acknowledgement point for writes."""
        if self.batch is not None:
            self._m_flushes.inc()
            self.batch.flush()

    def read(self, address: int) -> RecoveredRead | ReadResult:
        """Read one block through the top of the stack.

        Pending writes flush first: a read observes every write queued
        before it, and (with durability) only acknowledged state.
        """
        self._m_reads.inc()
        self.flush()
        if self.resilient is not None:
            return self.resilient.read(address)
        if self.batch is not None:
            return self.batch.read_many([address])[0]
        return self.engine.read(address)

    def read_many(
        self, addresses: Sequence[int]
    ) -> list[RecoveredRead | ReadResult]:
        return [self.read(address) for address in addresses]

    # -- durability ---------------------------------------------------------

    def checkpoint(self) -> None:
        """Force an epoch checkpoint (flushing pending writes first)."""
        if self.engine.persist is None:
            raise ValueError("no persistence attached to this stack")
        self.flush()
        self.engine.persist.checkpoint()

    @classmethod
    def recover(
        cls,
        store: DurableStore,
        config: EngineConfig,
        key: bytes,
        *,
        fast: bool = True,
        kernel_mode: str = "fast",
        paranoid_sample: int = 0,
        durability: DurabilityConfig | None = None,
        resilience: dict[str, Any] | None = None,
        registry: MetricRegistry | None = None,
    ) -> tuple["EngineStack", RecoveryReport]:
        """Rebuild a full stack from a (possibly crashed) durable store.

        Runs the persist recovery state machine to restore the engine,
        re-wraps it in the same layer order, and replays the recovered
        resilience events (checkpoint snapshot, then journaled
        retire/degrade records) through the idempotent ``apply_*``
        path.  Returns ``(stack, report)``.
        """
        registry = registry if registry is not None else get_registry()
        engine, report = _recover_engine(
            store, config, key, durability=durability, registry=registry
        )
        stack = cls(
            fast=fast,
            kernel_mode=kernel_mode,
            paranoid_sample=paranoid_sample,
            resilience=resilience,
            registry=registry,
            _engine=engine,
        )
        if stack.resilient is not None:
            stack.resilient.restore_resilience(report.resilience_events)
        stack._m_recoveries.inc()
        return stack, report


__all__ = ["EngineStack"]
