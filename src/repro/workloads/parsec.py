"""Per-application synthetic profiles for the 11 PARSEC 2.1 benchmarks.

The paper runs the 11 PARSEC applications its simulator supports
(Table 2 lists them).  Each profile composes the primitive patterns of
:mod:`repro.workloads.patterns` to match the application's documented
memory behaviour -- working-set size, memory and write intensity, and the
*shape* of the write stream that determines counter dynamics.

Scaling
-------
Simulating PARSEC's sim-med executions instruction-for-instruction is not
feasible in pure Python, so the reproduction scales every spatial quantity
down by roughly one order of magnitude and keeps the *relationships*
intact: working sets exceed the (correspondingly scaled) write-coalescing
cache by the same factors, sweep lengths cover whole buffers, and hot sets
overflow cache residency just as the originals do.  Rates per cycle are
therefore comparable in magnitude but not calibrated to be exact; column
*ratios* and app *orderings* are the reproduction target (see DESIGN.md).

Write-stream shapes per application:

================  ============================================================
application       modelled behaviour (counter-dynamics consequence)
================  ============================================================
facesim           repeated full mesh write-sweeps (lock-step -> delta resets)
                  plus solver phases that write two delta-groups per
                  block-group in stride (both march together while half the
                  group stays at zero: no reset/re-encode for 7-bit deltas,
                  and dual-length can widen only one of the two -- the
                  pathology that makes dual-length *worse* here, Table 2)
dedup             pipeline streaming: dominant sequential full write-sweeps
                  (delta resets absorb nearly everything), small clustered
                  hash-table hot set (widening absorbs the residue)
canneal           simulated-annealing swaps: zipf-scattered writes, hot
                  blocks isolated among cold neighbours (delta_min pins at
                  0 -> 7-bit delta == split; widening helps only the hottest
                  delta-group -> modest dual-length win)
vips              image rows: one 16-block run (= one delta-group) written
                  per 64-block stride, padding never written (no reset/
                  re-encode -> delta == split; the single hot delta-group
                  per block-group is exactly what widening captures)
ferret            similarity search: streamed result buffers (convergent)
                  plus clustered hot feature tables (single delta-group)
fluidanimate      sparse low-rate particle-cell writes in single delta-groups
freqmine          low write rate, full-coverage sequential phases (deltas
                  converge -> 7-bit fully absorbs)
raytrace          read-dominated traversal; rare framebuffer tile writes in
                  one delta-group per block-group
swaptions         cache-resident Monte-Carlo: negligible DRAM write traffic
blackscholes      cache-resident option pricing: negligible DRAM writes
bodytrack         small working set, read-dominated: negligible DRAM writes
================  ============================================================

Memory intensity (``gap_mean``) and nominal IPC follow the PARSEC
characterization [Bienia et al., PACT 2008]: canneal/facesim/dedup are
memory-bound, swaptions/blackscholes compute-bound.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.workloads.patterns import (
    PatternMix,
    sequential_stream,
    strided_sweep,
    uniform_scatter,
    zipf_hot_set,
)

BLOCK_BYTES = 64
_MB = 1024 * 1024 // BLOCK_BYTES  # blocks per MiB
_KB = 1024 // BLOCK_BYTES  # blocks per KiB (16)


@dataclass(frozen=True)
class ParsecProfile:
    """One application's synthetic-trace recipe.

    ``gap_mean`` is the mean compute gap between memory references (higher
    = less memory-bound).  ``base_ipc`` is the nominal unencrypted IPC used
    to convert instruction counts to cycles when a full timing simulation
    is not run (Table 2 normalization).  ``pattern_builder`` returns the
    (pattern, weight) list for one core given the region size in blocks
    and the core id.
    """

    name: str
    gap_mean: float
    base_ipc: float
    write_fraction_hint: float
    pattern_builder: object = field(repr=False)

    def mix(self, region_blocks: int, core: int, seed: int) -> PatternMix:
        """Build this application's pattern mix for one core."""
        patterns = self.pattern_builder(region_blocks, core)
        return PatternMix(
            patterns,
            gap_mean=self.gap_mean,
            # zlib.crc32, not hash(): str hashing is randomized per
            # process, which would make every trace -- and every exhibit
            # number -- differ from run to run.
            seed=(seed * 1000003)
            ^ (core * 7919)
            ^ (zlib.crc32(self.name.encode()) & 0xFFFF),
            region_blocks=region_blocks,
        )

    def trace(self, accesses: int, region_blocks: int, core: int = 0,
              seed: int = 1) -> list:
        """Generate one core's trace of ``accesses`` records."""
        return self.mix(region_blocks, core, seed).generate(accesses)

    def traces(self, accesses_per_core: int, region_blocks: int,
               cores: int = 4, seed: int = 1) -> list:
        """Generate the 4-thread workload of Table 1."""
        return [
            self.trace(accesses_per_core, region_blocks, core, seed)
            for core in range(cores)
        ]


def _clamp(blocks: int, region_blocks: int) -> int:
    return max(1, min(blocks, region_blocks))


def _facesim(region_blocks: int, core: int) -> list:
    # Per-core domain decomposition: each thread owns a mesh partition.
    partition = _clamp(1024, region_blocks // 4)
    base = core * partition
    hot_base = _clamp(8192, region_blocks // 2)
    return [
        # Full solver write-sweeps over the partition: lock-step counters.
        (sequential_stream(partition, write_fraction=1.0, base_block=base),
         0.31),
        # Read sweeps over positions/velocities.
        (sequential_stream(partition, write_fraction=0.0, base_block=base),
         0.40),
        # Scattered hot node *pairs* straddling two delta-groups of one
        # block-group (coupled element arrays): the dual-length worst case.
        (zipf_hot_set(1024, write_fraction=0.6, s=1.3,
                      cluster_blocks=2, cluster_stride=16,
                      span_blocks=region_blocks - hot_base,
                      base_block=hot_base), 0.012),
        (zipf_hot_set(_clamp(region_blocks // 8, region_blocks),
                      write_fraction=0.02, s=1.0, run_blocks=8), 0.278),
    ]


def _dedup(region_blocks: int, core: int) -> list:
    # Each pipeline stage streams through its own buffers.
    partition = _clamp(1024, region_blocks // 4)
    base = core * partition
    hot_base = _clamp(8192, region_blocks // 2)
    return [
        # Output buffers: pure sequential write streams (delta resets).
        (sequential_stream(partition, write_fraction=1.0, base_block=base),
         0.31),
        # Input chunks: sequential read streams.
        (sequential_stream(partition, write_fraction=0.0, base_block=base),
         0.42),
        # Hash-table hot set: aligned 16-block clusters (one delta-group
        # per hot object: the widening best case).
        (zipf_hot_set(1024, write_fraction=0.6, s=1.25,
                      cluster_blocks=16, cluster_stride=1,
                      span_blocks=region_blocks - hot_base,
                      base_block=hot_base), 0.015),
        (uniform_scatter(_clamp(region_blocks // 4, region_blocks),
                         write_fraction=0.05, run_blocks=8), 0.255),
    ]


def _canneal(region_blocks: int, core: int) -> list:
    netlist = region_blocks  # canneal's footprint dwarfs the LLC
    return [
        # Random element swaps: skewed, spatially isolated hot elements.
        (zipf_hot_set(8192, write_fraction=0.5, s=1.25,
                      span_blocks=netlist), 0.10),
        # A share of swaps touch element pairs straddling delta-groups.
        (zipf_hot_set(4096, write_fraction=0.5, s=1.25,
                      cluster_blocks=2, cluster_stride=16,
                      span_blocks=netlist), 0.05),
        (uniform_scatter(netlist, write_fraction=0.25,
                         run_blocks=6), 0.38),
        # Netlist traversal reads: short object runs.
        (zipf_hot_set(_clamp(region_blocks // 4, netlist),
                      write_fraction=0.0, s=1.0, run_blocks=8), 0.47),
    ]


def _vips(region_blocks: int, core: int) -> list:
    image = _clamp(256, region_blocks)  # scaled output-image window
    read_base = _clamp(1024 + core * 16384, region_blocks - 1)
    return [
        # Output rows: one delta-group-sized run per 64-block stride.
        # All threads share the alignment (they split the image by rows).
        (strided_sweep(image, stride=64, run=16, write_fraction=1.0), 0.08),
        # A minority of rows straddle two delta-groups (offset planes).
        (strided_sweep(image, stride=64, run=16, write_fraction=1.0,
                       base_block=8), 0.018),
        # Input rows: read-only streaming.
        (sequential_stream(_clamp(16384, region_blocks),
                           write_fraction=0.0, base_block=read_base), 0.62),
        (zipf_hot_set(_clamp(4096, region_blocks), write_fraction=0.03,
                      s=1.0, base_block=_clamp(1024, region_blocks - 1),
                      run_blocks=8), 0.282),
    ]


def _ferret(region_blocks: int, core: int) -> list:
    part = 64
    base = core * part
    hot_base = _clamp(8192, region_blocks // 2)
    return [
        # Query-result buffers: small per-core write sweeps (convergent).
        (sequential_stream(part, write_fraction=1.0, base_block=base),
         0.015),
        # Hot feature clusters: aligned single delta-groups.
        (zipf_hot_set(512, write_fraction=0.6, s=1.15,
                      cluster_blocks=16, cluster_stride=1,
                      span_blocks=region_blocks - hot_base,
                      base_block=hot_base), 0.028),
        # Database scans: read-dominated.
        (uniform_scatter(_clamp(region_blocks // 8, region_blocks),
                         write_fraction=0.02, run_blocks=8), 0.45),
        (zipf_hot_set(_clamp(region_blocks // 16, region_blocks),
                      write_fraction=0.02, s=1.0, run_blocks=8), 0.507),
    ]


def _fluidanimate(region_blocks: int, core: int) -> list:
    return [
        # Sparse isolated particle-cell writes (delta == split, tiny rate).
        (zipf_hot_set(256, write_fraction=0.5, s=1.3,
                      span_blocks=region_blocks), 0.0025),
        (sequential_stream(_clamp(32768, region_blocks // 4),
                           write_fraction=0.0,
                           base_block=core * _clamp(32768, region_blocks // 4)),
         0.62),
        (uniform_scatter(_clamp(region_blocks // 8, region_blocks),
                         write_fraction=0.02, run_blocks=8), 0.3775),
    ]


def _freqmine(region_blocks: int, core: int) -> list:
    part = 64
    base = core * part
    return [
        # FP-tree build: tiny full-coverage write sweeps (convergent).
        (sequential_stream(part, write_fraction=1.0, base_block=base),
         0.015),
        (zipf_hot_set(8192, write_fraction=0.01, s=1.0,
                      base_block=_clamp(4096, region_blocks // 2),
                      run_blocks=8), 0.36),
        (uniform_scatter(_clamp(region_blocks // 16, region_blocks),
                         write_fraction=0.01, run_blocks=8), 0.625),
    ]


def _raytrace(region_blocks: int, core: int) -> list:
    return [
        # Rare isolated hot writes (shading accumulators).
        (zipf_hot_set(128, write_fraction=0.5, s=1.3,
                      span_blocks=region_blocks), 0.002),
        # BVH traversal: read-dominated.
        (zipf_hot_set(_clamp(region_blocks // 2, region_blocks),
                      write_fraction=0.004, s=1.1, run_blocks=8), 0.62),
        (uniform_scatter(_clamp(region_blocks // 4, region_blocks),
                         write_fraction=0.004, run_blocks=8), 0.378),
    ]


def _swaptions(region_blocks: int, core: int) -> list:
    return [
        # Cache-resident Monte-Carlo scratchpads: everything coalesces.
        (zipf_hot_set(512, write_fraction=0.3, s=1.2), 0.90),
        (uniform_scatter(_clamp(32 * 1024, region_blocks),
                         write_fraction=0.01, run_blocks=8), 0.10),
    ]


def _blackscholes(region_blocks: int, core: int) -> list:
    portfolio = _clamp(16 * 1024, region_blocks)  # 1 MiB option array
    return [
        # One read-stream pass; results cache-resident.
        (sequential_stream(portfolio, write_fraction=0.01), 0.70),
        (zipf_hot_set(256, write_fraction=0.2, s=1.2), 0.30),
    ]


def _bodytrack(region_blocks: int, core: int) -> list:
    frames = _clamp(16 * 1024, region_blocks)  # 1 MiB frame data
    return [
        (sequential_stream(frames, write_fraction=0.01), 0.55),
        (zipf_hot_set(768, write_fraction=0.15, s=1.2), 0.45),
    ]


PARSEC_PROFILES = {
    p.name: p
    for p in [
        # memory-bound apps: small gap_mean (many refs/kilo-instr).
        ParsecProfile("facesim", gap_mean=90, base_ipc=1.1,
                      write_fraction_hint=0.33, pattern_builder=_facesim),
        ParsecProfile("dedup", gap_mean=90, base_ipc=1.2,
                      write_fraction_hint=0.34, pattern_builder=_dedup),
        ParsecProfile("canneal", gap_mean=75, base_ipc=0.7,
                      write_fraction_hint=0.18, pattern_builder=_canneal),
        ParsecProfile("vips", gap_mean=110, base_ipc=1.4,
                      write_fraction_hint=0.11, pattern_builder=_vips),
        ParsecProfile("ferret", gap_mean=100, base_ipc=1.3,
                      write_fraction_hint=0.05, pattern_builder=_ferret),
        ParsecProfile("fluidanimate", gap_mean=120, base_ipc=1.5,
                      write_fraction_hint=0.01, pattern_builder=_fluidanimate),
        ParsecProfile("freqmine", gap_mean=130, base_ipc=1.5,
                      write_fraction_hint=0.03, pattern_builder=_freqmine),
        ParsecProfile("raytrace", gap_mean=140, base_ipc=1.6,
                      write_fraction_hint=0.01, pattern_builder=_raytrace),
        ParsecProfile("swaptions", gap_mean=250, base_ipc=2.0,
                      write_fraction_hint=0.28, pattern_builder=_swaptions),
        ParsecProfile("blackscholes", gap_mean=250, base_ipc=2.0,
                      write_fraction_hint=0.07, pattern_builder=_blackscholes),
        ParsecProfile("bodytrack", gap_mean=200, base_ipc=1.8,
                      write_fraction_hint=0.07, pattern_builder=_bodytrack),
    ]
}


def profile(name: str) -> ParsecProfile:
    """Fetch one application profile by name."""
    try:
        return PARSEC_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown PARSEC app {name!r}; choose from "
            f"{sorted(PARSEC_PROFILES)}"
        ) from None


def table2_apps() -> list:
    """The 11 applications of Table 2, in the paper's order."""
    return [
        "facesim", "dedup", "canneal", "vips", "ferret", "fluidanimate",
        "freqmine", "raytrace", "swaptions", "blackscholes", "bodytrack",
    ]


def figure8_apps() -> list:
    """The 7 applications Figure 8 plots (the paper omits the four with
    no measurable encryption impact)."""
    return [
        "facesim", "dedup", "canneal", "ferret", "fluidanimate",
        "freqmine", "raytrace",
    ]


__all__ = [
    "ParsecProfile",
    "PARSEC_PROFILES",
    "profile",
    "table2_apps",
    "figure8_apps",
]
