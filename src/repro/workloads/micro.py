"""Classic memory microbenchmarks as workload profiles.

Alongside the PARSEC stand-ins, the library ships the standard
memory-system microbenchmarks.  They serve two purposes:

* *calibration* -- each one pins a single behaviour (pure streaming,
  pure random, strided, dependent chasing), so simulator changes show up
  as clean, interpretable shifts;
* *worst/best-case probing* -- STREAM's copy kernel is the best case for
  delta resets; GUPS is the worst case for every counter scheme at once
  (uniform random updates defeat caching, convergence and widening).

Each factory returns a :class:`~repro.workloads.parsec.ParsecProfile`,
so micro workloads drop into the same harness as the PARSEC profiles::

    from repro.workloads.micro import MICRO_PROFILES
    ReencryptionExperiment().run_app(MICRO_PROFILES["gups"])
"""

from __future__ import annotations

from repro.workloads.parsec import ParsecProfile
from repro.workloads.patterns import (
    sequential_stream,
    strided_sweep,
    uniform_scatter,
    zipf_hot_set,
)

_KB = 16  # blocks per KiB


def _clamp(blocks: int, region_blocks: int) -> int:
    return max(1, min(blocks, region_blocks))


def _stream(region_blocks: int, core: int) -> list:
    """STREAM copy: read stream a, write stream b, lock-step."""
    size = _clamp(4096, region_blocks // 8)
    return [
        (sequential_stream(size, write_fraction=0.0,
                           base_block=2 * core * size), 0.50),
        (sequential_stream(size, write_fraction=1.0,
                           base_block=(2 * core + 1) * size), 0.50),
    ]


def _gups(region_blocks: int, core: int) -> list:
    """Giga-updates-per-second: read-modify-write at random addresses."""
    return [
        (uniform_scatter(region_blocks, write_fraction=0.5), 1.0),
    ]


def _stencil(region_blocks: int, core: int) -> list:
    """2D 5-point stencil: read sweeps over three rows, write one."""
    plane = _clamp(8192, region_blocks // 4)
    base = core * plane
    return [
        (sequential_stream(plane, write_fraction=0.0, base_block=base), 0.72),
        (sequential_stream(plane, write_fraction=1.0, base_block=base), 0.28),
    ]


def _pointer_chase(region_blocks: int, core: int) -> list:
    """Dependent random reads over a large pool (latency-bound)."""
    pool = _clamp(region_blocks // 2, region_blocks)
    return [
        (zipf_hot_set(pool, write_fraction=0.0, s=1.0), 0.95),
        (uniform_scatter(pool, write_fraction=0.05), 0.05),
    ]


def _strided_write(region_blocks: int, core: int) -> list:
    """One delta-group-aligned write run per block-group (the widening
    best case in pure form)."""
    buffer_blocks = _clamp(4096, region_blocks)
    return [
        (strided_sweep(buffer_blocks, stride=64, run=16,
                       write_fraction=1.0), 0.60),
        (sequential_stream(buffer_blocks, write_fraction=0.0), 0.40),
    ]


MICRO_PROFILES = {
    profile.name: profile
    for profile in [
        ParsecProfile("stream", gap_mean=12, base_ipc=1.8,
                      write_fraction_hint=0.50, pattern_builder=_stream),
        ParsecProfile("gups", gap_mean=10, base_ipc=0.8,
                      write_fraction_hint=0.50, pattern_builder=_gups),
        ParsecProfile("stencil", gap_mean=16, base_ipc=1.6,
                      write_fraction_hint=0.28, pattern_builder=_stencil),
        ParsecProfile("pointer_chase", gap_mean=20, base_ipc=0.9,
                      write_fraction_hint=0.0, pattern_builder=_pointer_chase),
        ParsecProfile("strided_write", gap_mean=14, base_ipc=1.6,
                      write_fraction_hint=0.60,
                      pattern_builder=_strided_write),
    ]
}


def micro_profile(name: str) -> ParsecProfile:
    """Fetch a microbenchmark profile by name."""
    try:
        return MICRO_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown microbenchmark {name!r}; choose from "
            f"{sorted(MICRO_PROFILES)}"
        ) from None


__all__ = ["MICRO_PROFILES", "micro_profile"]
