"""Primitive access-pattern generators.

Each pattern is a small stateful object with a ``next_block(rng) ->
(block, is_write)`` method; :class:`PatternMix` draws from several patterns
with fixed weights to build an application's composite behaviour.  All
patterns work in units of 64-byte blocks within a bounded region and are
fully deterministic given the seed.

The patterns were chosen for their distinct effect on delta-encoded
counters (see :mod:`repro.workloads` for the mapping to paper behaviour).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

BLOCK_BYTES = 64


class sequential_stream:
    """Full sequential sweep over a buffer, wrapping around.

    Models streaming producers/consumers (dedup's pipeline buffers).
    Every block of the buffer is touched once per lap, so per-block write
    counts stay in lock-step -- the delta-reset-friendly case.
    """

    def __init__(self, buffer_blocks: int, write_fraction: float = 1.0,
                 base_block: int = 0):
        if buffer_blocks <= 0:
            raise ValueError("buffer_blocks must be positive")
        self.buffer_blocks = buffer_blocks
        self.write_fraction = write_fraction
        self.base_block = base_block
        self._position = 0

    def next_block(self, rng: random.Random) -> tuple:
        block = self.base_block + self._position
        self._position = (self._position + 1) % self.buffer_blocks
        return block, rng.random() < self.write_fraction


class strided_sweep:
    """Strided sweep: touch runs of ``run`` blocks every ``stride`` blocks.

    Models row/column processing with padding (vips image rows: a run is
    the pixels of one row that land in memory, the skipped remainder is
    other planes/padding).  Blocks off the stride are never written, so
    their deltas pin at zero -- delta_min stays 0 and neither reset nor
    re-encode can fire.  When ``run`` aligns with a delta-group (16
    blocks), the written blocks of each block-group concentrate in one
    delta-group, the case dual-length widening absorbs well.
    """

    def __init__(self, buffer_blocks: int, stride: int, run: int = 1,
                 write_fraction: float = 1.0, base_block: int = 0):
        if stride <= 0 or buffer_blocks <= 0 or run <= 0:
            raise ValueError("stride, run and buffer_blocks must be positive")
        if run > stride:
            raise ValueError("run must not exceed stride")
        self.buffer_blocks = buffer_blocks
        self.stride = stride
        self.run = run
        self.write_fraction = write_fraction
        self.base_block = base_block
        self._position = 0  # start of the current run
        self._offset = 0  # within the run

    def next_block(self, rng: random.Random) -> tuple:
        block = self.base_block + self._position + self._offset
        self._offset += 1
        if self._offset >= self.run:
            self._offset = 0
            self._position += self.stride
            if self._position >= self.buffer_blocks:
                self._position = 0
        return block, rng.random() < self.write_fraction


class zipf_hot_set:
    """Zipf-skewed accesses over a hot set (heavy head, long tail).

    Models pointer-heavy structures with popularity skew (ferret's
    database, canneal's netlist nodes).  Hot blocks race ahead of their
    group neighbours, defeating convergence.
    """

    def __init__(self, hot_blocks: int, write_fraction: float,
                 s: float = 1.2, base_block: int = 0,
                 cluster_blocks: int = 1, cluster_stride: int = 1,
                 span_blocks: int | None = None, run_blocks: int = 1):
        if hot_blocks <= 0 or cluster_blocks <= 0 or cluster_stride <= 0:
            raise ValueError(
                "hot_blocks, cluster_blocks and cluster_stride must be "
                "positive"
            )
        if run_blocks <= 0:
            raise ValueError("run_blocks must be positive")
        # Sequential-run state (object-granularity locality for read-heavy
        # uses; keep run_blocks=1 for write-hot sets so counter dynamics
        # stay per-block).
        self.run_blocks = run_blocks
        self._run_current = 0
        self._run_remaining = 0
        self.hot_blocks = hot_blocks
        self.write_fraction = write_fraction
        self.base_block = base_block
        self.cluster_blocks = cluster_blocks
        self.cluster_stride = cluster_stride
        self.span_blocks = span_blocks or hot_blocks
        # Precompute the CDF once; sampling is then a bisect.
        weights = [1.0 / (rank + 1) ** s for rank in range(hot_blocks)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        self._cdf = cumulative
        # Spatial placement: popularity ranks fill *clusters* whose
        # geometry is what the counter-scheme comparisons hinge on:
        #
        # * cluster_blocks=1                     -- isolated hot blocks
        #   scattered among cold neighbours (delta-group widening captures
        #   each one; delta_min stays 0),
        # * cluster_blocks=16, cluster_stride=1  -- a hot object filling
        #   one aligned delta-group (the single-widening best case),
        # * cluster_blocks=2, cluster_stride=16  -- hot pairs landing in
        #   two delta-groups of one block-group (only one can widen: the
        #   dual-length worst case, cf. facesim in Table 2).
        #
        # Cluster origins are scattered pseudo-randomly over
        # ``span_blocks`` so hot clusters sit far apart when the span
        # exceeds the hot set.
        slot_blocks = cluster_blocks * cluster_stride
        slots = max(1, self.span_blocks // slot_blocks)
        order = list(range(slots))
        random.Random(0xC0FFEE ^ hot_blocks ^ slots).shuffle(order)
        placement = []
        for rank in range(hot_blocks):
            cluster = order[(rank // cluster_blocks) % slots]
            offset = rank % cluster_blocks
            placement.append(
                (cluster * slot_blocks + offset * cluster_stride)
                % self.span_blocks
            )
        self._placement = placement

    def next_block(self, rng: random.Random) -> tuple:
        import bisect

        if self._run_remaining > 0:
            block = self.base_block + (
                self._run_current % self.span_blocks
            )
            self._run_current += 1
            self._run_remaining -= 1
            return block, rng.random() < self.write_fraction
        rank = bisect.bisect_left(self._cdf, rng.random())
        rank = min(rank, self.hot_blocks - 1)
        placed = self._placement[rank]
        if self.run_blocks > 1:
            self._run_current = placed + 1
            self._run_remaining = self.run_blocks - 1
        return self.base_block + placed, rng.random() < self.write_fraction


class uniform_scatter:
    """Uniform random accesses over the whole footprint.

    Models cold scans and random swaps (canneal's simulated annealing).
    ``run_blocks`` > 1 adds object-granularity spatial locality: each
    random jump is followed by a short sequential run, the way real code
    touches a multi-line object after chasing a pointer to it.  (This is
    what gives the metadata cache its residual hit rate on scatter-heavy
    applications: neighbouring blocks share a counter metadata block.)
    """

    def __init__(self, footprint_blocks: int, write_fraction: float,
                 base_block: int = 0, run_blocks: int = 1):
        if footprint_blocks <= 0 or run_blocks <= 0:
            raise ValueError(
                "footprint_blocks and run_blocks must be positive"
            )
        self.footprint_blocks = footprint_blocks
        self.write_fraction = write_fraction
        self.base_block = base_block
        self.run_blocks = run_blocks
        self._current = 0
        self._remaining = 0

    def next_block(self, rng: random.Random) -> tuple:
        if self._remaining <= 0:
            self._current = rng.randrange(self.footprint_blocks)
            self._remaining = self.run_blocks
        block = self.base_block + (self._current % self.footprint_blocks)
        self._current += 1
        self._remaining -= 1
        return block, rng.random() < self.write_fraction


class tile_burst:
    """Concentrated write bursts over small tiles, several tiles in
    flight at once.

    Models solver kernels updating sub-blocks of large meshes (facesim).
    With tiles smaller than a delta-group and several active tiles
    landing in the *same* block-group, multiple delta-groups overflow
    concurrently -- only one can claim the dual-length extension, which
    is exactly the facesim pathology of Table 2.
    """

    def __init__(self, footprint_blocks: int, tile_blocks: int,
                 burst_writes: int, concurrent_tiles: int,
                 write_fraction: float = 0.9):
        if min(footprint_blocks, tile_blocks, burst_writes,
               concurrent_tiles) <= 0:
            raise ValueError("all tile_burst parameters must be positive")
        self.footprint_blocks = footprint_blocks
        self.tile_blocks = tile_blocks
        self.burst_writes = burst_writes
        self.concurrent_tiles = concurrent_tiles
        self.write_fraction = write_fraction
        self._tiles = []  # list of [tile_base, writes_remaining]
        self._cursor = 0

    def _refill(self, rng: random.Random) -> None:
        num_tiles = max(1, self.footprint_blocks // self.tile_blocks)
        while len(self._tiles) < self.concurrent_tiles:
            tile = rng.randrange(num_tiles)
            self._tiles.append([tile * self.tile_blocks, self.burst_writes])

    def next_block(self, rng: random.Random) -> tuple:
        self._refill(rng)
        slot = self._cursor % len(self._tiles)
        self._cursor += 1
        tile = self._tiles[slot]
        block = tile[0] + rng.randrange(self.tile_blocks)
        tile[1] -= 1
        if tile[1] <= 0:
            self._tiles.pop(slot)
        return block, rng.random() < self.write_fraction


@dataclass(frozen=True)
class _WeightedPattern:
    pattern: object
    weight: float


class PatternMix:
    """Weighted composite of patterns, emitting full trace records.

    ``gap_mean`` controls memory intensity: gaps are drawn geometrically
    with that mean, so ``1000 / (gap_mean + 1)`` approximates the trace's
    accesses-per-kilo-instruction.
    """

    def __init__(self, patterns: list, gap_mean: float, seed: int,
                 region_blocks: int):
        if not patterns:
            raise ValueError("need at least one (pattern, weight) pair")
        if gap_mean < 0 or region_blocks <= 0:
            raise ValueError("gap_mean must be >= 0, region_blocks > 0")
        total = sum(weight for _, weight in patterns)
        if total <= 0:
            raise ValueError("pattern weights must sum to a positive value")
        self._patterns = [
            _WeightedPattern(p, w / total) for p, w in patterns
        ]
        self._gap_mean = gap_mean
        self._rng = random.Random(seed)
        self._region_blocks = region_blocks

    def _pick(self) -> object:
        roll = self._rng.random()
        acc = 0.0
        for entry in self._patterns:
            acc += entry.weight
            if roll < acc:
                return entry.pattern
        return self._patterns[-1].pattern

    def generate(self, accesses: int) -> list:
        """Produce ``accesses`` trace tuples (gap, is_write, address)."""
        rng = self._rng
        out = []
        gap_mean = self._gap_mean
        region = self._region_blocks
        for _ in range(accesses):
            gap = int(rng.expovariate(1.0 / gap_mean)) if gap_mean > 0 else 0
            block, is_write = self._pick().next_block(rng)
            out.append((gap, is_write, (block % region) * BLOCK_BYTES))
        return out


__all__ = [
    "sequential_stream",
    "strided_sweep",
    "zipf_hot_set",
    "uniform_scatter",
    "tile_burst",
    "PatternMix",
    "BLOCK_BYTES",
]
