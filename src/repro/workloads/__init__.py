"""Synthetic workload generation (the PARSEC 2.1 stand-in).

The paper drives its evaluation with PARSEC 2.1 (sim-med inputs, 4
threads).  Running PARSEC binaries is impossible here, but the results the
paper reports depend on a handful of measurable per-application traits:
memory intensity (how often the LLC misses), write intensity, and -- most
importantly for the counter schemes -- the *shape* of the write stream:

* full sequential sweeps make neighbouring counters converge (delta
  resets fire; dedup),
* strided/partial sweeps leave zero deltas behind (no reset, no
  re-encode; vips),
* scattered writes over a hot set grow counters unevenly (canneal),
* concurrated multi-tile bursts overflow several delta-groups at once
  (the facesim pathology that hurts dual-length encoding).

:mod:`repro.workloads.patterns` provides those primitive generators;
:mod:`repro.workloads.parsec` composes them into one profile per
benchmark application, with the trait values documented per app.
"""

from repro.workloads.parsec import (
    PARSEC_PROFILES,
    ParsecProfile,
    profile,
    table2_apps,
    figure8_apps,
)
from repro.workloads.micro import MICRO_PROFILES, micro_profile
from repro.workloads.patterns import (
    PatternMix,
    sequential_stream,
    strided_sweep,
    tile_burst,
    uniform_scatter,
    zipf_hot_set,
)

__all__ = [
    "PARSEC_PROFILES",
    "ParsecProfile",
    "profile",
    "table2_apps",
    "figure8_apps",
    "MICRO_PROFILES",
    "micro_profile",
    "PatternMix",
    "sequential_stream",
    "strided_sweep",
    "tile_burst",
    "uniform_scatter",
    "zipf_hot_set",
]
