"""Small shared utilities (bit packing, deterministic RNG helpers)."""

from repro.util.bits import BitReader, BitWriter

__all__ = ["BitReader", "BitWriter"]
