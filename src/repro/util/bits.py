"""Bit-level packing used to serialize counter metadata into memory blocks.

The counter schemes pack odd-sized fields (56-bit references, 7- and 6-bit
deltas, 2-bit group indices) into 64-byte metadata blocks exactly as the
hardware layouts in the paper's Figures 2 and 6 do.  Bits are written
LSB-first into a little-endian byte stream, so field boundaries are
deterministic and independent of host endianness.
"""

from __future__ import annotations


class BitWriter:
    """Append integer fields of arbitrary bit width to a bit stream."""

    def __init__(self):
        self._value = 0
        self._bits = 0

    def write(self, value: int, width: int) -> "BitWriter":
        """Append ``width`` bits of ``value`` (must fit)."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if not 0 <= value < (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._value |= value << self._bits
        self._bits += width
        return self

    @property
    def bit_length(self) -> int:
        return self._bits

    def to_bytes(self, length: int | None = None) -> bytes:
        """Render the stream; pad with zero bits up to ``length`` bytes."""
        needed = (self._bits + 7) // 8
        if length is None:
            length = needed
        if length < needed:
            raise ValueError(f"{self._bits} bits do not fit in {length} bytes")
        return self._value.to_bytes(length, "little")


class BitReader:
    """Consume integer fields of arbitrary bit width from a byte string."""

    def __init__(self, data: bytes):
        self._value = int.from_bytes(data, "little")
        self._offset = 0
        self._limit = len(data) * 8

    def read(self, width: int) -> int:
        """Read the next ``width`` bits as an unsigned integer."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if self._offset + width > self._limit:
            raise ValueError("read past end of bit stream")
        value = (self._value >> self._offset) & ((1 << width) - 1)
        self._offset += width
        return value

    @property
    def bits_remaining(self) -> int:
        return self._limit - self._offset


__all__ = ["BitWriter", "BitReader"]
