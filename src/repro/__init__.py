"""repro -- reproduction of "Reducing the Overhead of Authenticated Memory
Encryption Using Delta Encoding and ECC Memory" (Yitbarek & Austin,
DAC 2018).

The package implements the paper's two contributions and every substrate
they rest on:

* **MAC-in-ECC** (Section 3): store a 56-bit Carter-Wegman MAC + 7
  Hamming bits + 1 parity bit in the 64 ECC bits of an ECC DIMM, giving
  authentication, full error detection, and flip-and-check correction
  without extra MAC storage or MAC fetch transactions.
* **Delta-encoded counters** (Section 4): frame-of-reference encoding of
  per-block encryption counters with reset / re-encode / dual-length
  overflow mitigation, shrinking counter storage ~7x and cutting
  block-group re-encryptions vs split counters.

Quick start::

    from repro import SecureMemory, preset

    config = preset("combined", protected_bytes=1 << 20,
                    keystream_mode="splitmix")
    memory = SecureMemory(config, key=bytes(range(48)))
    memory.write(0, b"secret".ljust(64, b"\\x00"))
    print(memory.read(0).data[:6])          # b'secret'
    memory.flip_data_bits(0, [123])         # inject a DRAM fault
    print(memory.read(0).corrected_bits)    # (123,) -- flip-and-check

Package map (see DESIGN.md for the full inventory):

========================  ====================================================
``repro.crypto``          AES-128, GF(2^64), Carter-Wegman MAC, CTR mode
``repro.ecc``             parametric Hamming SEC-DED, (72,64) DIMM codec
``repro.core.counters``   monolithic / split / delta / dual-length counters
``repro.core.ecc_mac``    the MAC-in-ECC layout, detection, flip-and-check
``repro.core.engine``     SecureMemory (functional), timing backend, BMT
``repro.memsim``          caches, DDR3 DRAM model, trace-driven CPU
``repro.workloads``       synthetic PARSEC 2.1 application profiles
``repro.analysis``        storage model (Fig. 1), fault matrix (Fig. 3)
``repro.resilience``      fault campaigns, retry recovery, block quarantine
``repro.harness``         Table 2 / Figure 8 experiment runners
========================  ====================================================
"""

from repro.core.counters import (
    CounterEvent,
    DeltaCounters,
    DualLengthDeltaCounters,
    MonolithicCounters,
    SplitCounters,
    make_scheme,
)
from repro.core.ecc_mac import (
    CorrectionMethod,
    EccField,
    FlipAndCheckCorrector,
    MacEccCodec,
    Scrubber,
)
from repro.core.engine import (
    BonsaiMerkleTree,
    EncryptionTimingBackend,
    EngineConfig,
    IntegrityError,
    ReadResult,
    SecureMemory,
)
from repro.core.engine.config import PRESETS, preset
from repro.crypto import AES128, CarterWegmanMac, CtrModeCipher
from repro.ecc import BlockSecDed, HammingSecDed
from repro.harness import PerformanceExperiment, ReencryptionExperiment
from repro.resilience import (
    FaultCampaign,
    ResilientMemory,
    RetryPolicy,
)

__version__ = "1.0.0"

__all__ = [
    "SecureMemory",
    "ReadResult",
    "IntegrityError",
    "EngineConfig",
    "preset",
    "PRESETS",
    "EncryptionTimingBackend",
    "BonsaiMerkleTree",
    "MonolithicCounters",
    "SplitCounters",
    "DeltaCounters",
    "DualLengthDeltaCounters",
    "CounterEvent",
    "make_scheme",
    "EccField",
    "MacEccCodec",
    "FlipAndCheckCorrector",
    "CorrectionMethod",
    "Scrubber",
    "AES128",
    "CarterWegmanMac",
    "CtrModeCipher",
    "HammingSecDed",
    "BlockSecDed",
    "ReencryptionExperiment",
    "PerformanceExperiment",
    "ResilientMemory",
    "FaultCampaign",
    "RetryPolicy",
    "__version__",
]
