"""Intraprocedural control-flow graphs and a worklist dataflow solver.

This is the engine under the flow-aware checkers (RL005 secret-taint,
RL006 durable-write typestate).  It is deliberately small and concrete:

* :func:`build_cfg` turns one ``ast.FunctionDef`` / ``AsyncFunctionDef``
  into a :class:`CFG` whose nodes are *statements* (not basic blocks --
  at lint granularity the simplicity is worth more than the constant
  factor).  Three synthetic nodes exist in every graph: ``ENTRY``,
  ``EXIT`` (normal return / fall-off-the-end) and ``RAISE_EXIT``
  (exception escaping the function).  Keeping the two exits apart lets
  the typestate checker say *which kind* of path leaks an open
  transaction.
* Every statement that can raise carries an **exception edge** to the
  innermost enclosing handler (or ``RAISE_EXIT``).  Exception edges
  propagate the statement's *post*-state: the txn-protocol calls the
  typestate checker cares about (``begin``/``commit``/``abort``) are
  atomic transitions, and assuming completion on the throwing edge is
  what keeps the guarded ``begin/try/except BaseException: abort; raise``
  idiom in ``core.engine.secure_memory``/``fast.batch_memory`` clean.
* :class:`Dataflow` is a forward worklist solver over any join
  semilattice the caller supplies as plain callables.  Analyses built on
  it here are *may*-analyses over small sets (tainted names, txn states),
  so fixpoints are a handful of iterations.

``try/finally`` is approximated: the finally suite is built once and its
exit fans out to the normal successor *and* both synthetic exits, rather
than being duplicated per continuation.  That merges states across
continuations -- sound for the may-analyses used here, and the checkers
only act on *must* facts (singleton state sets), so the merge can hide a
finding but never invent one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Generic, Hashable, Iterator, TypeVar

ENTRY = 0
EXIT = 1
RAISE_EXIT = 2

#: statements that can never raise and therefore carry no exception edge
_NO_RAISE = (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)


@dataclass
class FlowNode:
    """One CFG node: a statement, or a synthetic entry/exit."""

    index: int
    stmt: ast.stmt | None
    succ: list[int] = field(default_factory=list)
    #: exception-edge successors (post-state propagates along these)
    exc: list[int] = field(default_factory=list)

    @property
    def synthetic(self) -> bool:
        return self.stmt is None


@dataclass
class CFG:
    """Statement-level control-flow graph of one function body."""

    func: ast.FunctionDef | ast.AsyncFunctionDef
    nodes: list[FlowNode] = field(default_factory=list)

    def node(self, index: int) -> FlowNode:
        return self.nodes[index]

    def statements(self) -> Iterator[FlowNode]:
        for node in self.nodes:
            if node.stmt is not None:
                yield node

    def predecessors(self) -> dict[int, list[tuple[int, bool]]]:
        """index -> [(pred_index, is_exception_edge), ...]."""
        preds: dict[int, list[tuple[int, bool]]] = {
            n.index: [] for n in self.nodes
        }
        for node in self.nodes:
            for succ in node.succ:
                preds[succ].append((node.index, False))
            for succ in node.exc:
                preds[succ].append((node.index, True))
        return preds


class _Builder:
    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef):
        self.cfg = CFG(func=func)
        for index in (ENTRY, EXIT, RAISE_EXIT):
            self.cfg.nodes.append(FlowNode(index=index, stmt=None))

    def _new(self, stmt: ast.stmt) -> FlowNode:
        node = FlowNode(index=len(self.cfg.nodes), stmt=stmt)
        self.cfg.nodes.append(node)
        return node

    # ``handler`` is where a raise inside the current region lands;
    # ``break_to``/``continue_to`` are loop targets (None outside loops).
    def seq(
        self,
        stmts: list[ast.stmt],
        succ: int,
        handler: int,
        break_to: int | None,
        continue_to: int | None,
    ) -> int:
        """Wire a statement sequence; returns its entry node index."""
        entry = succ
        for stmt in reversed(stmts):
            entry = self.one(stmt, entry, handler, break_to, continue_to)
        return entry

    def one(
        self,
        stmt: ast.stmt,
        succ: int,
        handler: int,
        break_to: int | None,
        continue_to: int | None,
    ) -> int:
        node = self._new(stmt)
        raises = not isinstance(stmt, _NO_RAISE)

        if isinstance(stmt, (ast.If,)):
            body = self.seq(stmt.body, succ, handler, break_to, continue_to)
            orelse = self.seq(
                stmt.orelse, succ, handler, break_to, continue_to
            )
            node.succ = [body, orelse]
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            orelse = self.seq(
                stmt.orelse, succ, handler, break_to, continue_to
            )
            body = self.seq(stmt.body, node.index, handler, succ, node.index)
            node.succ = [body, orelse]
        elif isinstance(stmt, ast.Try):
            after = succ
            if stmt.finalbody:
                # The finally suite is built once; a synthetic join after
                # it fans out to the normal successor and both exits so
                # states arriving on exceptional/return continuations
                # are not lost (see module docstring).
                join = self._synthetic([after, EXIT, RAISE_EXIT])
                after = self.seq(
                    stmt.finalbody, join, handler, break_to, continue_to
                )
            handler_entries = [
                self.seq(clause.body, after, handler, break_to, continue_to)
                for clause in stmt.handlers
            ]
            # A raise in the body dispatches to every handler and -- no
            # handler may match -- onward to the enclosing handler,
            # through the finally suite when present.
            escape = after if stmt.finalbody else handler
            dispatch = self._synthetic(
                handler_entries + [escape]
                if handler_entries
                else [escape]
            )
            orelse_entry = self.seq(
                stmt.orelse, after, dispatch, break_to, continue_to
            )
            body_entry = self.seq(
                stmt.body, orelse_entry, dispatch, break_to, continue_to
            )
            node.succ = [body_entry]
            raises = False
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            body = self.seq(stmt.body, succ, handler, break_to, continue_to)
            node.succ = [body]
        elif isinstance(stmt, ast.Return):
            node.succ = [EXIT]
        elif isinstance(stmt, ast.Raise):
            node.succ = [handler]
            raises = False
        elif isinstance(stmt, ast.Break):
            node.succ = [break_to if break_to is not None else succ]
        elif isinstance(stmt, ast.Continue):
            node.succ = [continue_to if continue_to is not None else succ]
        else:
            node.succ = [succ]

        if raises:
            node.exc = [handler]
        return node.index

    def _synthetic(self, targets: list[int]) -> int:
        """Synthetic fan-out/join point (exception dispatch, finally)."""
        deduped = list(dict.fromkeys(targets))
        if len(deduped) == 1:
            return deduped[0]
        node = FlowNode(index=len(self.cfg.nodes), stmt=None)
        self.cfg.nodes.append(node)
        node.succ = deduped
        return node.index


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the statement-level CFG of one function body."""
    builder = _Builder(func)
    entry = builder.seq(
        func.body, EXIT, RAISE_EXIT, break_to=None, continue_to=None
    )
    builder.cfg.node(ENTRY).succ = [entry]
    return builder.cfg


S = TypeVar("S", bound=Hashable)


class Dataflow(Generic[S]):
    """Forward worklist solver over a join semilattice.

    ``transfer(node, state)`` returns the post-state of executing one
    statement; ``join(a, b)`` merges states at control-flow merges.
    Exception edges propagate the post-state (see module docstring).
    States must be hashable (use ``frozenset`` for set lattices).
    """

    def __init__(
        self,
        cfg: CFG,
        transfer: Callable[[FlowNode, S], S],
        join: Callable[[S, S], S],
        entry_state: S,
    ) -> None:
        self.cfg = cfg
        self.transfer = transfer
        self.join = join
        self.entry_state = entry_state
        self.in_states: dict[int, S] = {}
        self.out_states: dict[int, S] = {}

    def solve(self, max_iterations: int = 10000) -> "Dataflow[S]":
        preds = self.cfg.predecessors()
        self.in_states = {ENTRY: self.entry_state}
        self.out_states = {ENTRY: self.entry_state}
        work = list(self.cfg.node(ENTRY).succ)
        iterations = 0
        while work:
            iterations += 1
            if iterations > max_iterations:  # pragma: no cover - backstop
                raise RuntimeError("dataflow did not converge")
            index = work.pop()
            node = self.cfg.node(index)
            incoming: S | None = None
            for pred, _is_exc in preds[index]:
                state = self.out_states.get(pred)
                if state is None:
                    continue
                incoming = (
                    state
                    if incoming is None
                    else self.join(incoming, state)
                )
            if incoming is None:
                continue
            out = (
                incoming
                if node.stmt is None
                else self.transfer(node, incoming)
            )
            changed = (
                index not in self.in_states
                or self.in_states[index] != incoming
                or self.out_states.get(index) != out
            )
            self.in_states[index] = incoming
            self.out_states[index] = out
            if changed:
                for succ in node.succ:
                    work.append(succ)
                for succ in node.exc:
                    work.append(succ)
        return self

    def state_at(self, index: int) -> S | None:
        """In-state of a node (None when unreachable)."""
        return self.in_states.get(index)


def functions_of(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in a module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def calls_in(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Every call expression inside one statement, in source order.

    Nested function/class definitions are opaque: their bodies execute
    at call time, not where they appear, so their calls are excluded.
    """
    todo: list[ast.AST] = [stmt]
    while todo:
        node = todo.pop(0)
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        if isinstance(node, ast.Call):
            yield node
        todo.extend(ast.iter_child_nodes(node))


def own_calls(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Calls evaluated by the statement *itself* at its CFG node.

    Compound statements contribute only their header expressions (the
    ``if``/``while`` test, the ``for`` iterable, the context managers):
    their suites are separate CFG nodes, and attributing suite calls to
    the header would double-count them with the wrong dataflow state.
    """
    headers: list[ast.expr]
    if isinstance(stmt, (ast.If, ast.While)):
        headers = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        headers = [stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        headers = [item.context_expr for item in stmt.items]
    elif isinstance(
        stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        headers = []
    else:
        yield from calls_in(stmt)
        return
    for header in headers:
        todo: list[ast.AST] = [header]
        while todo:
            node = todo.pop(0)
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.Call):
                yield node
            todo.extend(ast.iter_child_nodes(node))


def dotted_name(node: ast.AST) -> tuple[str, ...]:
    """Attribute chain as a name tuple (``a.b.c`` -> ("a","b","c"));
    empty when the expression is not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return tuple(parts)
    return ()


__all__ = [
    "CFG",
    "Dataflow",
    "ENTRY",
    "EXIT",
    "FlowNode",
    "RAISE_EXIT",
    "build_cfg",
    "calls_in",
    "dotted_name",
    "functions_of",
    "own_calls",
]
