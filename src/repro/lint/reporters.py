"""Text and JSON renderings of a :class:`~repro.lint.framework.LintResult`.

The text form is the grep-able ``path:line: CODE message`` stream plus a
one-paragraph summary; the JSON form (schema ``repro.lint/1``) is the
machine interface CI and editors consume, with the same summary as
structured counts.
"""

from __future__ import annotations

import json

from repro.lint.diagnostics import Severity
from repro.lint.framework import LintResult

REPORT_SCHEMA = "repro.lint/1"


def _summary_counts(result: LintResult) -> dict[str, int]:
    by_severity = {s.label: 0 for s in Severity}
    for diagnostic in result.diagnostics + result.parse_errors:
        by_severity[diagnostic.severity.label] += 1
    return {
        "files": result.files_checked,
        "findings": len(result.diagnostics) + len(result.parse_errors),
        "errors": by_severity["error"],
        "warnings": by_severity["warning"],
        "notes": by_severity["note"],
        "suppressed": result.suppressed,
        "grandfathered": len(result.grandfathered),
        "stale_baseline": len(result.stale_baseline),
    }


def render_text(result: LintResult) -> str:
    lines = [
        d.format() for d in sorted(result.parse_errors + result.diagnostics)
    ]
    counts = _summary_counts(result)
    summary = (
        f"checked {counts['files']} files: {counts['errors']} errors, "
        f"{counts['warnings']} warnings, {counts['notes']} notes"
    )
    extras = []
    if counts["suppressed"]:
        extras.append(f"{counts['suppressed']} suppressed inline")
    if counts["grandfathered"]:
        extras.append(f"{counts['grandfathered']} grandfathered by baseline")
    if counts["stale_baseline"]:
        extras.append(
            f"{counts['stale_baseline']} stale baseline entries "
            "(fixed findings -- regenerate the baseline)"
        )
    if extras:
        summary += " (" + ", ".join(extras) + ")"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult, indent: int | None = 2) -> str:
    payload = {
        "schema": REPORT_SCHEMA,
        "summary": _summary_counts(result),
        "findings": [
            d.as_dict()
            for d in sorted(result.parse_errors + result.diagnostics)
        ],
        "grandfathered": [d.as_dict() for d in sorted(result.grandfathered)],
        "stale_baseline": list(result.stale_baseline),
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


__all__ = ["REPORT_SCHEMA", "render_text", "render_json"]
