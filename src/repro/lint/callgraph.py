"""Project-wide symbol table and call graph over all ``SourceUnit``s.

The flow-aware checkers need facts no single file contains: *is this
call a key-derivation source?* when the source was imported under an
alias, *does this helper transitively journal?* when the journaling
call is two frames down.  This module builds those facts in two phases,
mirroring the framework's collect/check split:

1. **symbols** -- every module's top-level functions, classes and
   methods get a qualified name (``repro.fast.batch_memory.
   BatchSecureMemory.flush``), plus the module's import alias map.
2. **calls** -- every call site inside every function is resolved to a
   set of *candidate* qualified names: exact for local and imported
   names and for ``self.method()`` within a class; by trailing
   attribute name for anything reached through an object whose type the
   AST cannot see.  By-name candidates are deliberately over-inclusive
   (a may-call-graph): the checkers built on top only ever use the
   graph to *excuse* code (``_journal_resilience`` counts as journaling
   because it reaches ``append_resilience``) or to *widen* source sets
   (a wrapper returning ``derive_key(...)`` is itself a key source), so
   imprecision here can hide a finding but never invent one.

The module name of a unit derives from its ``subpath``
(``service/tenant.py`` -> ``repro.service.tenant``); fixture units
outside a ``repro`` tree keep their bare stem, which is how the tests
build little multi-module projects from strings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.lint.framework import SourceUnit


def module_name_of(subpath: str) -> str:
    """``core/engine/units.py`` -> ``repro.core.engine.units``."""
    trimmed = subpath[:-3] if subpath.endswith(".py") else subpath
    parts = [p for p in trimmed.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "/" in subpath:
        parts = ["repro"] + parts
    return ".".join(parts) if parts else "repro"


class ImportMap:
    """Local alias -> canonical dotted path, for one module."""

    def __init__(self, tree: ast.Module) -> None:
        self.modules: dict[str, str] = {}
        self.names: dict[str, tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )

    def resolve(self, chain: tuple[str, ...]) -> tuple[str, ...]:
        """Canonicalize the leading alias of a dotted chain."""
        if not chain:
            return chain
        head = chain[0]
        if head in self.modules:
            return tuple(self.modules[head].split(".")) + chain[1:]
        if head in self.names:
            module, original = self.names[head]
            return tuple(module.split(".")) + (original,) + chain[1:]
        return chain


@dataclass
class CallSite:
    """One resolved call expression inside a function body."""

    node: ast.Call
    #: import-canonicalized dotted chain of the callee ("" when the
    #: callee is not a pure name chain, e.g. ``fns[i]()``)
    chain: tuple[str, ...]
    #: candidate qualified names inside the project (may be empty)
    targets: tuple[str, ...]

    @property
    def name(self) -> str:
        """Trailing name of the callee ("" when unresolvable)."""
        return self.chain[-1] if self.chain else ""


@dataclass
class FunctionInfo:
    """One function or method definition, project-wide identity."""

    qualname: str
    module: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    unit: SourceUnit
    calls: list[CallSite] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.node.name


def _function_calls(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.Call]:
    """Call expressions belonging to *this* function body only."""
    todo: list[ast.AST] = list(node.body)
    while todo:
        child = todo.pop(0)
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        if isinstance(child, ast.Call):
            yield child
        todo.extend(ast.iter_child_nodes(child))


def _callee_chain(node: ast.AST) -> tuple[str, ...]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return tuple(parts)
    return ()


class ProjectIndex:
    """Symbol table + may-call-graph over a set of source units."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.by_name: dict[str, list[str]] = {}
        self.imports: dict[str, ImportMap] = {}
        self.modules: dict[str, SourceUnit] = {}

    # -- phase 1: symbols ----------------------------------------------------

    @classmethod
    def build(cls, units: Sequence[SourceUnit]) -> "ProjectIndex":
        index = cls()
        for unit in units:
            index._collect_symbols(unit)
        for info in index.functions.values():
            index._resolve_calls(info)
        return index

    def _collect_symbols(self, unit: SourceUnit) -> None:
        module = module_name_of(unit.subpath)
        self.modules[module] = unit
        self.imports[module] = ImportMap(unit.tree)
        for item in unit.tree.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add(module, None, item, unit)
            elif isinstance(item, ast.ClassDef):
                for member in item.body:
                    if isinstance(
                        member, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._add(module, item.name, member, unit)

    def _add(
        self,
        module: str,
        cls_name: str | None,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        unit: SourceUnit,
    ) -> None:
        qualname = ".".join(
            p for p in (module, cls_name, node.name) if p is not None
        )
        info = FunctionInfo(
            qualname=qualname, module=module, cls=cls_name, node=node,
            unit=unit,
        )
        self.functions[qualname] = info
        self.by_name.setdefault(node.name, []).append(qualname)

    # -- phase 2: call resolution --------------------------------------------

    def _resolve_calls(self, info: FunctionInfo) -> None:
        imports = self.imports[info.module]
        for call in _function_calls(info.node):
            chain = imports.resolve(_callee_chain(call.func))
            info.calls.append(
                CallSite(
                    node=call,
                    chain=chain,
                    targets=tuple(self._candidates(info, chain)),
                )
            )

    def _candidates(
        self, info: FunctionInfo, chain: tuple[str, ...]
    ) -> Iterator[str]:
        if not chain:
            return
        # self.method() within the defining class
        if (
            len(chain) == 2
            and chain[0] in ("self", "cls")
            and info.cls is not None
        ):
            exact = f"{info.module}.{info.cls}.{chain[1]}"
            if exact in self.functions:
                yield exact
                return
        # module-qualified (possibly via import canonicalization)
        dotted = ".".join(chain)
        if dotted in self.functions:
            yield dotted
            return
        # plain name in the same module
        if len(chain) == 1:
            local = f"{info.module}.{chain[0]}"
            if local in self.functions:
                yield local
                return
        # fall back to by-name candidates (may-call edges)
        yield from self.by_name.get(chain[-1], ())

    # -- queries -------------------------------------------------------------

    def callees(self, qualname: str) -> set[str]:
        info = self.functions.get(qualname)
        if info is None:
            return set()
        out: set[str] = set()
        for call in info.calls:
            out.update(call.targets)
        return out

    def reaches(
        self,
        qualname: str,
        target_names: Iterable[str],
        max_depth: int = 6,
    ) -> bool:
        """True when the function may (transitively) call any function
        whose trailing name is in ``target_names``."""
        wanted = set(target_names)
        seen: set[str] = set()
        frontier = {qualname}
        for _ in range(max_depth):
            next_frontier: set[str] = set()
            for qn in frontier:
                if qn in seen:
                    continue
                seen.add(qn)
                info = self.functions.get(qn)
                if info is None:
                    continue
                for call in info.calls:
                    if call.name in wanted:
                        return True
                    next_frontier.update(call.targets)
            if not next_frontier:
                return False
            frontier = next_frontier - seen
        return False


__all__ = [
    "CallSite",
    "FunctionInfo",
    "ImportMap",
    "ProjectIndex",
    "module_name_of",
]
