"""``repro.lint``: domain-aware static analysis for the reproduction.

The paper fixes its invariants in hardware -- 56-bit MACs plus 7 Hamming
bits plus 1 parity bit in the 64-bit ECC lane, 16x6-bit delta groups
with 72 reserved widening bits, 64-byte blocks in 4 KB groups.  In
Python those invariants are masks, shifts and dotted metric names that
only fail at runtime, if a test happens to hit them.  This package makes
them fail at lint time instead:

========  ==================================================================
code      checker
========  ==================================================================
RL001     bit-width contracts: literals in ``core/``/``ecc/``/``crypto/``
          cross-checked against :mod:`repro.lint.contracts`
RL002     determinism: no wallclock, unseeded RNGs or unordered-set
          iteration in simulation paths
RL003     metric catalog: dotted metric names resolve against
          :mod:`repro.obs.catalog`
RL004     simulation hygiene: mutable defaults, bare except, stat-struct
          writes that bypass the RegistryView shims
========  ==================================================================

Run it as ``repro lint [PATHS] [--format json] [--baseline FILE]``, or
programmatically via :func:`repro.lint.framework.run_lint`.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.checkers import CHECKER_CLASSES, default_checkers
from repro.lint.diagnostics import Diagnostic, Severity, Suppressions
from repro.lint.framework import (
    Checker,
    LintResult,
    SourceUnit,
    lint_text,
    run_lint,
)
from repro.lint.reporters import REPORT_SCHEMA, render_json, render_text

__all__ = [
    "Baseline",
    "CHECKER_CLASSES",
    "Checker",
    "Diagnostic",
    "LintResult",
    "REPORT_SCHEMA",
    "Severity",
    "SourceUnit",
    "Suppressions",
    "default_checkers",
    "lint_text",
    "render_json",
    "render_text",
    "run_lint",
]
