"""``repro.lint``: domain-aware static analysis for the reproduction.

The paper fixes its invariants in hardware -- 56-bit MACs plus 7 Hamming
bits plus 1 parity bit in the 64-bit ECC lane, 16x6-bit delta groups
with 72 reserved widening bits, 64-byte blocks in 4 KB groups.  In
Python those invariants are masks, shifts and dotted metric names that
only fail at runtime, if a test happens to hit them.  This package makes
them fail at lint time instead:

========  ==================================================================
code      checker
========  ==================================================================
RL001     bit-width contracts: literals in ``core/``/``ecc/``/``crypto/``
          cross-checked against :mod:`repro.lint.contracts`
RL002     determinism: no wallclock, unseeded RNGs or unordered-set
          iteration in simulation and service paths
RL003     metric catalog: dotted metric names resolve against
          :mod:`repro.obs.catalog`
RL004     simulation hygiene: mutable defaults, bare except, stat-struct
          writes that bypass the RegistryView shims
RL005     secret-taint: key material must never flow into persistence,
          log/metric labels, or wire frames (dataflow over the CFG)
RL006     durable-write typestate: journaled mutations sit between
          ``begin_txn`` and a seal on every path; quarantine folds
          must be journaled (the PR 6 bug class, now a gate)
RL007     asyncio-safety: no blocking calls in service coroutines, no
          shard-state mutation straddling an ``await``, no swallowed
          ``CancelledError``
========  ==================================================================

RL001-RL004 are per-file AST matchers; RL005-RL007 are flow-aware,
built on the intraprocedural CFGs of :mod:`repro.lint.flow` and the
project-wide call graph of :mod:`repro.lint.callgraph`.

Run it as ``repro lint [PATHS] [--format json] [--baseline FILE]
[--changed [REF]]``, or programmatically via
:func:`repro.lint.framework.run_lint`.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.callgraph import ImportMap, ProjectIndex
from repro.lint.checkers import CHECKER_CLASSES, default_checkers
from repro.lint.diagnostics import Diagnostic, Severity, Suppressions
from repro.lint.flow import CFG, Dataflow, build_cfg
from repro.lint.framework import (
    Checker,
    LintResult,
    SourceUnit,
    lint_text,
    run_lint,
)
from repro.lint.reporters import REPORT_SCHEMA, render_json, render_text

__all__ = [
    "Baseline",
    "CFG",
    "CHECKER_CLASSES",
    "Checker",
    "Dataflow",
    "Diagnostic",
    "ImportMap",
    "LintResult",
    "ProjectIndex",
    "REPORT_SCHEMA",
    "Severity",
    "SourceUnit",
    "Suppressions",
    "build_cfg",
    "default_checkers",
    "lint_text",
    "render_json",
    "render_text",
    "run_lint",
]
