"""The domain checkers RL001-RL007."""

from __future__ import annotations

from repro.lint.checkers.rl001_bitwidth import BitWidthContracts
from repro.lint.checkers.rl002_determinism import DeterminismChecker
from repro.lint.checkers.rl003_metrics import MetricCatalogChecker
from repro.lint.checkers.rl004_hygiene import HygieneChecker
from repro.lint.checkers.rl005_secret_taint import SecretTaintChecker
from repro.lint.checkers.rl006_txn_typestate import TxnTypestateChecker
from repro.lint.checkers.rl007_asyncio import AsyncSafetyChecker
from repro.lint.framework import Checker

CHECKER_CLASSES: tuple[type[Checker], ...] = (
    BitWidthContracts,
    DeterminismChecker,
    MetricCatalogChecker,
    HygieneChecker,
    SecretTaintChecker,
    TxnTypestateChecker,
    AsyncSafetyChecker,
)


def default_checkers() -> list[Checker]:
    """Fresh instances of every registered checker.

    Fresh per run: checkers may accumulate cross-file facts in their
    collect pass, which must not leak between runs.
    """
    return [cls() for cls in CHECKER_CLASSES]


__all__ = [
    "AsyncSafetyChecker",
    "BitWidthContracts",
    "CHECKER_CLASSES",
    "DeterminismChecker",
    "HygieneChecker",
    "MetricCatalogChecker",
    "SecretTaintChecker",
    "TxnTypestateChecker",
    "default_checkers",
]
