"""RL001: bit-width contracts.

Cross-checks the literal bit-twiddling in ``core/``, ``ecc/`` and
``crypto/`` against the declarative layout table in
:mod:`repro.lint.contracts`.  Five rules, all purely syntactic over
constant-foldable expressions:

``constant drift``
    A module- or class-level ``NAME = <int literal>`` whose normalized
    name matches a contract constant must equal the contract's value
    (copies may exist; they may not disagree).
``identifier-bound masks``
    ``tag & 0xFF`` where ``tag`` is contracted at 56 bits: an all-ones
    mask AND-ed onto an identifier that names a contracted field must
    have exactly the contracted width.
``uncontracted masks``
    Any literal all-ones mask ``(1 << k) - 1`` (or its hex spelling)
    with ``k > 8`` must use a contracted or machine width.
``uncontracted shifts``
    A literal shift amount beyond 8 must be a contracted field offset
    or a machine width.  (Algorithmic mixers that legitimately shift by
    odd amounts carry documented inline suppressions.)
``byte/modulus widths``
    Literal ``to_bytes``/``from_bytes`` lengths and literal moduli /
    floor-divisors >= 8 must be contracted sizes or powers of two.
"""

from __future__ import annotations

import ast

from repro.lint import contracts
from repro.lint.framework import Checker, Reporter, SourceUnit

_SMALL = 8  # widths/shifts up to a byte are generic bit-twiddling

_FOLD_OPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.LShift: lambda a, b: a << b,
    ast.RShift: lambda a, b: a >> b,
    ast.BitOr: lambda a, b: a | b,
    ast.BitAnd: lambda a, b: a & b,
    ast.BitXor: lambda a, b: a ^ b,
}


def fold_int(node: ast.AST) -> int | None:
    """Evaluate an int-literal expression tree, or None."""
    if isinstance(node, ast.Constant):
        return node.value if type(node.value) is int else None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = fold_int(node.operand)
        return -inner if inner is not None else None
    if isinstance(node, ast.BinOp):
        op = _FOLD_OPS.get(type(node.op))
        if op is None:
            return None
        left = fold_int(node.left)
        right = fold_int(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, (ast.LShift, ast.RShift)) and (
            right < 0 or right > 4096
        ):
            return None
        try:
            return op(left, right)
        except (OverflowError, ValueError):
            return None
    return None


def _mask_width(value: int) -> int | None:
    """k when ``value == (1 << k) - 1`` with k >= 1, else None."""
    if value <= 0:
        return None
    if value & (value + 1):
        return None
    return value.bit_length()


def _terminal_identifier(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _bound_width(identifier: str) -> int | None:
    """Contracted width of an identifier, by exact or suffix match."""
    lowered = identifier.lower().lstrip("_")
    for key, width in contracts.IDENTIFIER_WIDTHS.items():
        if lowered == key or lowered.endswith("_" + key):
            return width
    return None


def _is_power_of_two(value: int) -> bool:
    return value > 0 and not value & (value - 1)


class BitWidthContracts(Checker):
    code = "RL001"
    name = "bit-width-contracts"
    description = (
        "literal masks, shifts, moduli and byte widths must match the "
        "declared paper layout contracts"
    )
    scopes = ("core/", "ecc/", "crypto/")

    def check(self, unit: SourceUnit, report: Reporter) -> None:
        allowed_widths = (
            contracts.CONTRACT_WIDTHS | contracts.GENERIC_WIDTHS
        )
        allowed_shifts = (
            contracts.CONTRACT_SHIFTS | contracts.GENERIC_WIDTHS
        )
        for node in ast.walk(unit.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._check_constant_drift(node, report)
            elif isinstance(node, ast.BinOp):
                if isinstance(node.op, ast.BitAnd):
                    self._check_mask(node, allowed_widths, report)
                elif isinstance(node.op, (ast.LShift, ast.RShift)):
                    self._check_shift(node, allowed_shifts, report)
                elif isinstance(node.op, (ast.Mod, ast.FloorDiv)):
                    self._check_modulus(node, report)
            elif isinstance(node, ast.Call):
                self._check_byte_widths(node, report)

    # -- rules ---------------------------------------------------------------

    def _check_constant_drift(
        self, node: ast.Assign | ast.AnnAssign, report: Reporter
    ) -> None:
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        else:
            targets = [node.target]
            value = node.value
        folded = fold_int(value) if value is not None else None
        if folded is None:
            return
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            normalized = target.id.lstrip("_").upper()
            expected = contracts.CONTRACT_CONSTANTS.get(normalized)
            if expected is not None and folded != expected:
                report(
                    node,
                    f"{target.id} = {folded} contradicts the layout "
                    f"contract {normalized} = {expected}",
                )

    def _check_mask(
        self,
        node: ast.BinOp,
        allowed_widths: frozenset[int],
        report: Reporter,
    ) -> None:
        for operand, other in (
            (node.right, node.left),
            (node.left, node.right),
        ):
            value = fold_int(operand)
            if value is None:
                continue
            width = _mask_width(value)
            if width is None:
                continue  # not an all-ones mask (0x80-style bit tests)
            identifier = _terminal_identifier(other)
            if identifier is not None:
                bound = _bound_width(identifier)
                if bound is not None and width != bound:
                    report(
                        node,
                        f"mask of width {width} applied to "
                        f"{identifier!r}, which the layout contract "
                        f"fixes at {bound} bits",
                    )
                    return
            if width > _SMALL and width not in allowed_widths:
                report(
                    node,
                    f"all-ones mask of uncontracted width {width} "
                    "(no layout field has this width)",
                )
            return  # only judge one literal operand per AND

    def _check_shift(
        self,
        node: ast.BinOp,
        allowed_shifts: frozenset[int],
        report: Reporter,
    ) -> None:
        amount = fold_int(node.right)
        if amount is None or amount <= _SMALL:
            return
        if amount not in allowed_shifts:
            report(
                node,
                f"shift by uncontracted amount {amount} (no layout "
                "field starts or ends here)",
            )

    def _check_modulus(self, node: ast.BinOp, report: Reporter) -> None:
        value = fold_int(node.right)
        if value is None or value < _SMALL:
            return
        if value in contracts.CONTRACT_MODULI or _is_power_of_two(value):
            return
        report(
            node,
            f"modulus/divisor {value} is not a contracted group or "
            "word size",
        )

    def _check_byte_widths(self, node: ast.Call, report: Reporter) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr != "to_bytes" or not node.args:
            return
        length = fold_int(node.args[0])
        if length is None:
            return
        if length in contracts.CONTRACT_BYTE_SIZES or (
            length <= 4 or _is_power_of_two(length)
        ):
            return
        report(
            node,
            f"packs {length} bytes ({length * 8} bits): not a "
            "contracted field width",
        )


__all__ = ["BitWidthContracts", "fold_int"]
