"""RL004: simulation hygiene.

Three classes of quiet rot this checker turns into errors:

* **mutable default arguments** -- ``def f(x=[])`` shares one list
  across every call; in a simulator that aliases state across runs.
* **bare except** -- ``except:`` swallows ``KeyboardInterrupt`` and
  hides the real fault class; name the exception.
* **stat-struct writes that bypass the RegistryView shims** -- the
  views synthesize read/write properties for their declared fields, so
  ``stats.row_hits += 1`` hits a shared registry counter; a typo'd
  field name (``stats.row_hit += 1``) silently creates a plain instance
  attribute the metrics plane never sees.  The collect pre-pass gathers
  every declared view field across the tree; the check pass flags
  writes through ``.stats`` / ``.counters`` receivers to names no view
  declares.
"""

from __future__ import annotations

import ast

from repro.lint.framework import Checker, Reporter, SourceUnit

#: attribute names treated as stat-struct receivers when written through
_VIEW_RECEIVERS = {"stats", "counters"}

#: non-field attributes of the RegistryView machinery itself
_VIEW_BASE_ATTRS = {"_registry_", "_metrics_", "per_group_re_encryptions"}


def _base_names(class_def: ast.ClassDef) -> set[str]:
    names = set()
    for base in class_def.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


class HygieneChecker(Checker):
    code = "RL004"
    name = "simulation-hygiene"
    description = (
        "no mutable default args, no bare except, no stat-struct "
        "writes that bypass the RegistryView shims"
    )
    scopes = ()  # everywhere

    def __init__(self) -> None:
        #: every field name some RegistryView subclass declares, plus
        #: instance attributes their __init__ methods assign.
        self.known_view_fields: set[str] = set(_VIEW_BASE_ATTRS)
        self.view_classes: set[str] = {"RegistryView"}

    # -- collect pass --------------------------------------------------------

    def collect(self, unit: SourceUnit) -> None:
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _base_names(node) & self.view_classes:
                continue
            self.view_classes.add(node.name)
            for item in node.body:
                self._collect_class_item(item)

    def _collect_class_item(self, item: ast.stmt) -> None:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    if target.id == "_VIEW_FIELDS" and isinstance(
                        item.value, ast.Dict
                    ):
                        for key in item.value.keys:
                            if isinstance(key, ast.Constant) and isinstance(
                                key.value, str
                            ):
                                self.known_view_fields.add(key.value)
                    else:
                        self.known_view_fields.add(target.id)
        elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Properties are readable; __init__-assigned attributes are
            # legitimate instance state.
            self.known_view_fields.add(item.name)
            for sub in ast.walk(item):
                if isinstance(sub, (ast.Assign, ast.AugAssign)):
                    targets = (
                        sub.targets
                        if isinstance(sub, ast.Assign)
                        else [sub.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            self.known_view_fields.add(target.attr)

    # -- check pass ----------------------------------------------------------

    def check(self, unit: SourceUnit, report: Reporter) -> None:
        for node in ast.walk(unit.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_defaults(node, report)
            elif isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    report(
                        node,
                        "bare 'except:' swallows KeyboardInterrupt and "
                        "masks the fault class; catch a named exception",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                self._check_view_write(node, report)

    def _check_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, report: Reporter
    ) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                kind = type(default).__name__.lower()
                report(
                    default,
                    f"mutable default argument ({kind} display) is "
                    "shared across calls; default to None and build "
                    "inside",
                )
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            ):
                report(
                    default,
                    f"mutable default argument ({default.func.id}()) is "
                    "shared across calls; default to None and build "
                    "inside",
                )

    def _check_view_write(
        self, node: ast.Assign | ast.AugAssign, report: Reporter
    ) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            receiver = target.value
            if (
                isinstance(receiver, ast.Attribute)
                and receiver.attr in _VIEW_RECEIVERS
                and target.attr not in self.known_view_fields
            ):
                report(
                    node,
                    f"write to undeclared stat field "
                    f"'.{receiver.attr}.{target.attr}': not a "
                    "RegistryView field, so the registry never sees it; "
                    "declare it in _VIEW_FIELDS or fix the typo",
                )


__all__ = ["HygieneChecker"]
