"""RL005: key material must never reach persistence, telemetry or wire.

The service hands every tenant engine a 48-byte key derived from the
master ``secret_seed`` (``service.tenant.derive_key``); the engines fan
that out into AES round keys and MAC/PRF subkeys.  All of it is *key
material*, and the system's whole security argument assumes it lives
only in process memory: the journal, checkpoints, metric labels, log
lines and wire frames are all places an operator (or an attacker with
the disk) can read.

This checker runs a forward taint analysis over each function's CFG
(:mod:`repro.lint.flow`), driven by the declarative
:data:`repro.lint.contracts.TAINT_MODEL`:

* **sources** -- calls to the sanctioned key-derivation functions,
  parameters and attributes with key-bearing names.  The source-call set
  is widened project-wide before checking: any function that *returns* a
  source call's result unsanitized (a wrapper around ``derive_key``) is
  itself a source, found by fixpoint over the
  :class:`~repro.lint.callgraph.ProjectIndex`.
* **propagation** -- through assignment (including tuple unpacking and
  loop targets), arithmetic, f-strings, containers, slicing, method
  calls on tainted receivers (``key.hex()`` is still the key) and
  unknown calls with tainted arguments.  Taint does **not** flow through
  attribute loads on a tainted object: a supervisor constructed with a
  secret is tainted as a whole, but ``supervisor.router`` is not key
  material.
* **sanitizers** -- the crypto primitives.  Ciphertext, MAC tags,
  digests and keystream are *designed* to be stored; ``encrypt(key,
  pt)`` declassifies.  Sizes and type queries reveal no key bits.
* **sinks** -- persistence (journal/checkpoint/file writes), telemetry
  (log/metric/trace), and wire (frame encoders); the message says which
  kind leaked.

Sets are deliberately narrow: a missed source hides a finding, but an
over-broad one would cry wolf, and a taint gate the tree cannot keep
clean gets deleted within a month.
"""

from __future__ import annotations

import ast

from repro.lint.callgraph import ProjectIndex
from repro.lint.contracts import TAINT_MODEL, TaintModel
from repro.lint.flow import (
    Dataflow,
    FlowNode,
    build_cfg,
    dotted_name,
    functions_of,
    own_calls,
)
from repro.lint.framework import Checker, Reporter, SourceUnit

#: paths where key material legitimately lives (crypto kernels, engine
#: layers) or that compose them (service, stacks, persistence).
_SCOPES = (
    "core/", "crypto/", "fast/", "persist/", "resilience/", "service/",
    "stack.py",
)

_SINK_VERBS = {
    "persistence": "is written durably via",
    "telemetry": "leaks into logs/metrics via",
    "wire": "leaves the process via",
}


def _trailing(call: ast.Call) -> str:
    chain = dotted_name(call.func)
    return chain[-1] if chain else ""


class _Taint:
    """Expression taint judgement against one dataflow state."""

    def __init__(self, model: TaintModel, sources: frozenset[str]):
        self.model = model
        self.sources = sources

    def tainted(self, expr: ast.AST, state: frozenset[str]) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in state
        if isinstance(expr, ast.Attribute):
            chain = dotted_name(expr)
            if chain and ".".join(chain) in state:
                return True
            return expr.attr in self.model.source_attrs
        if isinstance(expr, ast.Call):
            name = _trailing(expr)
            if name in self.model.sanitizers:
                return False
            if name in self.sources:
                return True
            if isinstance(expr.func, ast.Attribute) and self.tainted(
                expr.func.value, state
            ):
                return True  # method on key material stays key material
            if name[:1].isupper():
                # Instantiation stores the key; the instance is not key
                # bytes.  Reads back out (obj.secret_seed) are caught by
                # the source-attr set, so object-level taint would only
                # smear onto everything computed *near* the object.
                return False
            return any(
                self.tainted(arg, state)
                for arg in [*expr.args, *[kw.value for kw in expr.keywords]]
            )
        if isinstance(expr, (ast.Lambda, ast.Constant)):
            return False
        # generic: BinOp, JoinedStr, containers, Subscript, IfExp, ...
        return any(
            self.tainted(child, state)
            for child in ast.iter_child_nodes(expr)
            if isinstance(child, ast.expr)
        )


def _target_names(target: ast.expr) -> list[str]:
    """Assignable names a store-target binds (dotted for attributes;
    the container for subscript stores: ``d[k] = key`` taints ``d``)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Attribute):
        chain = dotted_name(target)
        return [".".join(chain)] if chain else []
    if isinstance(target, ast.Subscript):
        return _target_names(target.value)  # container absorbs the value
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for element in target.elts:
            out.extend(_target_names(element))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def _returns_source(
    node: ast.FunctionDef | ast.AsyncFunctionDef, sources: set[str]
) -> bool:
    """Lexical check: does this function return a source call's result
    (directly, or via a local assigned from one)?"""
    source_locals: set[str] = set()
    returns: list[ast.expr] = []
    todo: list[ast.AST] = list(node.body)
    while todo:
        child = todo.pop(0)
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if isinstance(child, ast.Assign) and isinstance(
            child.value, ast.Call
        ):
            if _trailing(child.value) in sources:
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        source_locals.add(target.id)
        if isinstance(child, ast.Return) and child.value is not None:
            returns.append(child.value)
        todo.extend(ast.iter_child_nodes(child))
    for value in returns:
        if isinstance(value, ast.Call) and _trailing(value) in sources:
            return True
        if isinstance(value, ast.Name) and value.id in source_locals:
            return True
    return False


class SecretTaintChecker(Checker):
    code = "RL005"
    name = "secret-taint"
    description = (
        "key material must never reach persistence, log/metric labels, "
        "or wire frames"
    )
    scopes = _SCOPES
    needs_project = True

    def __init__(self) -> None:
        self.model = TAINT_MODEL
        self._sources: frozenset[str] = self.model.source_calls

    def prepare(self, project: ProjectIndex) -> None:
        """Widen the source-call set: wrappers returning a source call's
        result unsanitized are sources too (fixpoint, project-wide)."""
        sources = set(self.model.source_calls)
        changed = True
        while changed:
            changed = False
            for info in project.functions.values():
                if info.name in sources:
                    continue
                if _returns_source(info.node, sources):
                    sources.add(info.name)
                    changed = True
        self._sources = frozenset(sources)

    def check(self, unit: SourceUnit, report: Reporter) -> None:
        judge = _Taint(self.model, self._sources)
        for func in functions_of(unit.tree):
            self._check_function(func, judge, report)

    def _check_function(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        judge: _Taint,
        report: Reporter,
    ) -> None:
        entry = frozenset(
            arg.arg
            for arg in [
                *func.args.posonlyargs,
                *func.args.args,
                *func.args.kwonlyargs,
            ]
            if arg.arg in self.model.source_params
        )
        cfg = build_cfg(func)

        def transfer(
            node: FlowNode, state: frozenset[str]
        ) -> frozenset[str]:
            return self._transfer(node.stmt, state, judge)

        def join(a: frozenset[str], b: frozenset[str]) -> frozenset[str]:
            return a | b

        flow = Dataflow(cfg, transfer, join, entry).solve()

        for node in cfg.statements():
            state = flow.state_at(node.index)
            if state is None:
                continue  # unreachable
            for call in own_calls(node.stmt):
                kind = self.model.sink_kind(_trailing(call))
                if kind is None:
                    continue
                for value in [
                    *call.args,
                    *[kw.value for kw in call.keywords],
                ]:
                    if judge.tainted(value, state):
                        report(
                            call,
                            f"key material ({ast.unparse(value)[:40]}) "
                            f"{_SINK_VERBS[kind]} "
                            f"{_trailing(call)}(); keys must stay in "
                            "process memory",
                        )
                        break

    def _transfer(
        self,
        stmt: ast.stmt | None,
        state: frozenset[str],
        judge: _Taint,
    ) -> frozenset[str]:
        if stmt is None:
            return state
        names = set(state)
        if isinstance(stmt, ast.Assign):
            hot = judge.tainted(stmt.value, state)
            for target in stmt.targets:
                self._bind(target, stmt.value, hot, names, state, judge)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            hot = judge.tainted(stmt.value, state)
            self._bind(stmt.target, stmt.value, hot, names, state, judge)
        elif isinstance(stmt, ast.AugAssign):
            hot = judge.tainted(stmt.value, state) or judge.tainted(
                stmt.target, state
            )
            for name in _target_names(stmt.target):
                (names.add if hot else names.discard)(name)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            hot = judge.tainted(stmt.iter, state)
            for name in _target_names(stmt.target):
                (names.add if hot else names.discard)(name)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is None:
                    continue
                hot = judge.tainted(item.context_expr, state)
                for name in _target_names(item.optional_vars):
                    (names.add if hot else names.discard)(name)
        return frozenset(names)

    def _bind(
        self,
        target: ast.expr,
        value: ast.expr,
        hot: bool,
        names: set[str],
        state: frozenset[str],
        judge: _Taint,
    ) -> None:
        # element-wise tuple unpacking when shapes line up
        if isinstance(target, (ast.Tuple, ast.List)) and isinstance(
            value, (ast.Tuple, ast.List)
        ):
            if len(target.elts) == len(value.elts):
                for sub_t, sub_v in zip(target.elts, value.elts):
                    self._bind(
                        sub_t,
                        sub_v,
                        judge.tainted(sub_v, state),
                        names,
                        state,
                        judge,
                    )
                return
        for name in _target_names(target):
            (names.add if hot else names.discard)(name)


__all__ = ["SecretTaintChecker"]
