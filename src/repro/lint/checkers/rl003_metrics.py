"""RL003: metric names must resolve against the central catalog.

Every dotted name passed to a registry ``counter()`` / ``gauge()`` /
``histogram()`` call -- and every absolute name declared in a
``_VIEW_FIELDS`` table or queried via ``total()`` / ``subtree()`` --
must resolve against :mod:`repro.obs.catalog`.  A name the catalog does
not know is, with overwhelming likelihood, a typo that would register a
parallel metric no report ever reads; the lint error points at the line
instead of leaving a dashboard silently empty.

f-string names are checked by their literal head (``f"probe.{name}"``
resolves against the ``probe.*`` family).  Non-literal names (variables)
are out of static reach and pass.
"""

from __future__ import annotations

import ast

from repro.lint.framework import Checker, Reporter, SourceUnit
from repro.obs import catalog

_REGISTRATION_METHODS = {"counter", "gauge", "histogram"}
_QUERY_METHODS = {"total", "subtree"}


def _literal_head(node: ast.AST) -> tuple[str | None, bool]:
    """(literal text, is_exact) of a metric-name argument.

    A plain string constant is exact; an f-string yields its leading
    literal fragment (inexact); anything else is statically unknown.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, True
    if isinstance(node, ast.JoinedStr):
        head = []
        for part in node.values:
            if isinstance(part, ast.Constant) and isinstance(part.value, str):
                head.append(part.value)
            else:
                break
        return ("".join(head) or None), False
    return None, False


class MetricCatalogChecker(Checker):
    code = "RL003"
    name = "metric-catalog"
    description = (
        "dotted metric names must resolve against repro.obs.catalog"
    )
    scopes = ()  # the whole tree registers metrics

    def check(self, unit: SourceUnit, report: Reporter) -> None:
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Call):
                self._check_call(node, report)
            elif isinstance(node, ast.Assign):
                self._check_view_fields(node, report)

    def _check_call(self, node: ast.Call, report: Reporter) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in _REGISTRATION_METHODS:
            if not node.args:
                return
            text, exact = _literal_head(node.args[0])
            if text is None or "." not in text:
                return  # not a dotted literal: out of static reach
            self._resolve(node, text, exact, report)
        elif func.attr in _QUERY_METHODS and node.args:
            text, exact = _literal_head(node.args[0])
            if text is None or "." not in text:
                return
            if func.attr == "subtree":
                # A subtree query names a prefix, not a full metric.
                if not catalog.resolve_prefix(text + "."):
                    report(
                        node,
                        f"metric subtree {text!r} matches nothing in "
                        "the catalog (repro/obs/catalog.py)",
                    )
            else:
                self._resolve(node, text, exact, report)

    def _resolve(
        self, node: ast.AST, text: str, exact: bool, report: Reporter
    ) -> None:
        if exact:
            if catalog.resolve(text) is None:
                report(
                    node,
                    f"metric name {text!r} is not in the catalog "
                    "(repro/obs/catalog.py); typo, or add it there",
                )
        else:
            if not catalog.resolve_prefix(text):
                report(
                    node,
                    f"no cataloged metric starts with {text!r} "
                    "(repro/obs/catalog.py); typo, or add the family",
                )

    def _check_view_fields(self, node: ast.Assign, report: Reporter) -> None:
        if len(node.targets) != 1:
            return
        target = node.targets[0]
        if not isinstance(target, ast.Name) or target.id != "_VIEW_FIELDS":
            return
        if not isinstance(node.value, ast.Dict):
            return
        for value in node.value.values:
            if not isinstance(value, ast.Constant):
                continue
            if not isinstance(value.value, str) or "." not in value.value:
                continue  # relative names are prefixed at runtime
            if catalog.resolve(value.value) is None:
                report(
                    value,
                    f"view field maps to uncataloged metric "
                    f"{value.value!r} (repro/obs/catalog.py)",
                )


__all__ = ["MetricCatalogChecker"]
