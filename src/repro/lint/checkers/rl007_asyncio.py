"""RL007: coroutine hygiene in the service plane.

The service runs one event loop per shard (DESIGN §12); shard-owned
state is safe to mutate without locks *only because* a coroutine holds
the loop until it awaits.  That argument fails three ways, each of which
this checker flags inside ``async def``s under ``service/``, driven by
:data:`repro.lint.contracts.ASYNC_MODEL`:

* **Blocking calls** -- ``time.sleep``, ``subprocess.*``, synchronous
  ``pathlib`` file I/O.  One blocking call stalls every tenant on the
  shard.  Resolution goes through the import map, so ``from time import
  sleep as pause`` still matches.  The enforced answer is
  ``asyncio.to_thread`` (or hoisting the I/O out of the async path);
  startup-time exceptions carry documented suppressions.
* **Awaits straddling a shard-state mutation sequence.**  Two lexical
  mutations of the same shard-owned attribute (``tenants``, ``quotas``,
  ``retired``, ``draining``) with an ``await`` between them mean another
  request can observe -- or race -- the half-applied update.  The check
  is lexical (source order within one coroutine), which is exactly the
  reviewer's squint it automates.
* **Swallowed cancellation** -- an ``except`` that catches
  ``CancelledError`` (explicitly, via ``BaseException``, or bare) and
  does not re-raise, or ``contextlib.suppress`` listing it.  Swallowing
  cancellation turns shard drain/shutdown into a hang.  Plain ``except
  Exception`` is fine: since 3.8 it does not catch ``CancelledError``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import ImportMap
from repro.lint.contracts import ASYNC_MODEL
from repro.lint.flow import dotted_name
from repro.lint.framework import Checker, Reporter, SourceUnit

#: method names that mutate a set/dict shard attribute in place
_MUTATORS = frozenset({
    "add", "append", "clear", "discard", "extend", "pop", "popitem",
    "remove", "setdefault", "update",
})


def _own_nodes(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Every AST node belonging to this coroutine body, nested
    function/class bodies excluded (they run on their own schedule)."""
    todo: list[ast.AST] = list(func.body)
    while todo:
        node = todo.pop(0)
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        yield node
        todo.extend(ast.iter_child_nodes(node))


def _caught_names(handler: ast.ExceptHandler) -> list[str]:
    """Trailing names of the exception types one handler catches
    ([""] for a bare ``except``)."""
    if handler.type is None:
        return [""]
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    out = []
    for node in types:
        chain = dotted_name(node)
        out.append(chain[-1] if chain else "")
    return out


class AsyncSafetyChecker(Checker):
    code = "RL007"
    name = "asyncio-safety"
    description = (
        "service coroutines must not block the loop, straddle shard-state "
        "mutations across awaits, or swallow cancellation"
    )
    scopes = ("service/",)

    def __init__(self) -> None:
        self.model = ASYNC_MODEL

    def check(self, unit: SourceUnit, report: Reporter) -> None:
        imports = ImportMap(unit.tree)
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                self._check_coroutine(node, imports, report)

    def _check_coroutine(
        self,
        func: ast.AsyncFunctionDef,
        imports: ImportMap,
        report: Reporter,
    ) -> None:
        events: list[tuple[int, int, str, ast.AST]] = []
        for node in _own_nodes(func):
            if isinstance(node, ast.Call):
                self._check_call(node, imports, report)
                attr = self._call_mutates(node)
                if attr is not None:
                    events.append(
                        (node.lineno, node.col_offset, attr, node)
                    )
            elif isinstance(node, ast.Await):
                events.append((node.lineno, node.col_offset, "", node))
            elif isinstance(node, (ast.Attribute, ast.Subscript)):
                attr = self._store_mutates(node)
                if attr is not None:
                    events.append(
                        (node.lineno, node.col_offset, attr, node)
                    )
            elif isinstance(node, ast.Try):
                self._check_handlers(node, report)
        self._check_straddle(events, report)

    # -- blocking calls -------------------------------------------------------

    def _check_call(
        self, call: ast.Call, imports: ImportMap, report: Reporter
    ) -> None:
        chain = imports.resolve(dotted_name(call.func))
        if not chain:
            return
        if tuple(chain[-2:]) in self.model.blocking_calls:
            report(
                call,
                f"blocking call {'.'.join(chain)}() in a coroutine "
                "stalls every tenant on this shard; use the asyncio "
                "equivalent or asyncio.to_thread",
            )
            return
        if len(chain) >= 2 and chain[-1] in self.model.blocking_methods:
            report(
                call,
                f"synchronous file I/O {'.'.join(chain[-2:])}() in a "
                "coroutine; hoist it out of the async path or wrap in "
                "asyncio.to_thread",
            )
            return
        if chain[-1] == "suppress" and any(
            dotted_name(arg)
            and dotted_name(arg)[-1] in self.model.must_propagate
            for arg in call.args
        ):
            report(
                call,
                "contextlib.suppress of CancelledError silences "
                "cancellation; shard drain would hang -- let it "
                "propagate",
            )

    # -- shard-state mutations straddling awaits ------------------------------

    def _call_mutates(self, call: ast.Call) -> str | None:
        chain = dotted_name(call.func)
        if len(chain) >= 2 and chain[-1] in _MUTATORS:
            for part in chain[:-1]:
                if part in self.model.shard_state_attrs:
                    return part
        return None

    def _store_mutates(
        self, node: ast.Attribute | ast.Subscript
    ) -> str | None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            target = (
                node.value if isinstance(node, ast.Subscript) else node
            )
            if (
                isinstance(target, ast.Attribute)
                and target.attr in self.model.shard_state_attrs
            ):
                return target.attr
        return None

    def _check_straddle(
        self,
        events: list[tuple[int, int, str, ast.AST]],
        report: Reporter,
    ) -> None:
        awaited_since: dict[str, bool] = {}
        for _line, _col, attr, node in sorted(
            events, key=lambda e: (e[0], e[1])
        ):
            if attr == "":  # an await suspends every pending sequence
                for key in awaited_since:
                    awaited_since[key] = True
            elif awaited_since.get(attr):
                report(
                    node,
                    f"mutation of shard-owned '{attr}' straddles an "
                    "await: interleaved requests can observe the "
                    "half-applied update; finish the mutation before "
                    "suspending",
                )
                awaited_since[attr] = False
            else:
                awaited_since[attr] = False

    # -- swallowed cancellation -----------------------------------------------

    def _check_handlers(self, node: ast.Try, report: Reporter) -> None:
        for handler in node.handlers:
            caught = _caught_names(handler)
            if not any(
                name in self.model.must_propagate
                or name in ("", "BaseException")
                for name in caught
            ):
                continue
            reraises = False
            todo: list[ast.AST] = list(handler.body)
            while todo:
                child = todo.pop(0)
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue
                if isinstance(child, ast.Raise):
                    reraises = True
                    break
                todo.extend(ast.iter_child_nodes(child))
            if not reraises:
                report(
                    handler,
                    "except clause catches CancelledError without "
                    "re-raising; swallowed cancellation turns shard "
                    "drain/shutdown into a hang",
                )


__all__ = ["AsyncSafetyChecker"]
