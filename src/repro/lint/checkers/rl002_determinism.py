"""RL002: determinism in simulation paths.

A simulator whose exhibits must reproduce bit-for-bit cannot consult
wallclock time, the process-global random state, or anything else that
varies between two runs of the same seed.  This checker flags, in the
simulation packages (``core/``, ``faultfs/``, ``memsim/``,
``persist/``, ``resilience/``, ``workloads/``):

* **wallclock reads** -- ``time.time``/``monotonic``/``perf_counter``
  (and ``_ns`` variants), ``datetime.now``/``utcnow``/``today``;
* **unseeded randomness** -- module-level ``random.<fn>()`` (the shared
  global RNG), ``random.Random()`` with no seed argument,
  ``numpy.random.<fn>()`` / ``default_rng()`` with no seed, and
  ``os.urandom``;
* **unordered iteration** -- ``for``/comprehension iteration directly
  over a ``set`` display or ``set()``/``frozenset()`` call, whose order
  is salted per process.

The observability plane (``obs/``) legitimately reads wallclock -- its
tracer and probes measure real elapsed time -- so it is exempt, as is
the analysis/harness layer, which is allowed to talk to the host.  The
service plane (``service/``) and the composed stack (``stack.py``) *are*
in scope: their engines must replay deterministically, and the places
where wallclock is intentional -- request-latency histograms, the quota
token buckets' monotonic clocks, supervisor readiness deadlines -- each
carry a documented inline suppression.  This is the bug class the PR 2
crc32-seed fix patched by hand; now it is a gate.
"""

from __future__ import annotations

import ast

from repro.lint.callgraph import ImportMap
from repro.lint.framework import Checker, Reporter, SourceUnit

_WALLCLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("time", "process_time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "getrandbits", "randbytes", "betavariate",
    "expovariate", "normalvariate", "vonmisesvariate", "triangular",
}

_NUMPY_RANDOM_FNS = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "uniform", "normal", "poisson", "seed",
}


def _dotted(node: ast.AST) -> tuple[str, ...]:
    """Attribute chain as a name tuple, e.g. ``np.random.rand`` ->
    ("np", "random", "rand"); empty when not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return tuple(parts)
    return ()


def _has_seed_argument(call: ast.Call) -> bool:
    if call.args:
        return True
    return any(kw.arg in ("seed", "x") or kw.arg is None for kw in call.keywords)


class DeterminismChecker(Checker):
    code = "RL002"
    name = "determinism"
    description = (
        "simulation paths must not read wallclock, use unseeded RNGs, "
        "or iterate unordered sets"
    )
    scopes = (
        "core/", "fast/", "faultfs/", "memsim/", "persist/", "resilience/",
        "service/", "stack.py", "workloads/",
    )
    #: wallclock is the obs plane's whole job; analysis/harness may talk
    #: to the host.
    exempt_scopes = ("obs/",)

    def check(self, unit: SourceUnit, report: Reporter) -> None:
        imports = ImportMap(unit.tree)
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Call):
                self._check_call(node, imports, report)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._check_iteration(node.iter, report)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    self._check_iteration(generator.iter, report)

    def _check_call(
        self, node: ast.Call, imports: ImportMap, report: Reporter
    ) -> None:
        chain = imports.resolve(_dotted(node.func))
        if not chain:
            return
        tail = chain[-2:] if len(chain) >= 2 else (chain[0],)

        if len(tail) == 2 and tuple(tail) in _WALLCLOCK:
            report(
                node,
                f"wallclock read {'.'.join(chain)}() in a simulation "
                "path; derive time from simulated cycles (obs/ is the "
                "allowlisted home for real clocks)",
            )
            return

        if chain[0] == "random" and len(chain) == 2:
            if chain[1] in _GLOBAL_RANDOM_FNS or chain[1] == "seed":
                report(
                    node,
                    f"process-global random.{chain[1]}() is unseeded "
                    "shared state; use a seeded random.Random instance",
                )
                return
            if chain[1] == "Random" and not _has_seed_argument(node):
                report(
                    node,
                    "random.Random() without a seed draws from OS "
                    "entropy; pass an explicit seed",
                )
                return

        if "random" in chain[:-1] and chain[-1] in _NUMPY_RANDOM_FNS | {
            "default_rng", "RandomState"
        }:
            if chain[-1] in ("default_rng", "RandomState"):
                if not _has_seed_argument(node):
                    report(
                        node,
                        f"{'.'.join(chain)}() without a seed is "
                        "non-reproducible; pass an explicit seed",
                    )
            else:
                report(
                    node,
                    f"module-level {'.'.join(chain)}() uses numpy's "
                    "global RNG; use a seeded Generator",
                )
            return

        if tuple(chain) == ("os", "urandom"):
            report(
                node,
                "os.urandom in a simulation path; derive keys/values "
                "from the run seed",
            )

    def _check_iteration(self, iterable: ast.AST, report: Reporter) -> None:
        if isinstance(iterable, ast.Set):
            report(
                iterable,
                "iteration over a set display: order is hash-salted "
                "per process; sort it or use a list/dict",
            )
        elif isinstance(iterable, ast.Call) and isinstance(
            iterable.func, ast.Name
        ):
            if iterable.func.id in ("set", "frozenset"):
                report(
                    iterable,
                    f"iteration over {iterable.func.id}(): order is "
                    "hash-salted per process; wrap in sorted()",
                )


__all__ = ["DeterminismChecker"]
