"""RL006: durable writes follow the journal's transaction typestate.

DESIGN §9's protocol: every durable mutation is mirrored into an open
journal transaction (``begin_txn`` ... ``record_data``/``record_meta``
... ``commit_txn``), the ``commit_txn`` seal is the acknowledgement
barrier, and an exception mid-transaction must ``abort_txn`` before
re-raising.  Resilience-plane folds journal through self-sealing
``append_resilience`` records instead -- the path PR 6's
quarantine-resurrection bug skipped, resurrecting retired blocks on
recovery.

Two analyses, both driven by :data:`repro.lint.contracts.TXN_MODEL`:

* **Typestate over the CFG.**  Per *receiver chain* (``self.persist``
  and a local ``persist`` are tracked separately), each path carries a
  state in {UNKNOWN, OPEN, CLOSED}; the checker only acts on **must**
  facts -- a singleton state set.  That discipline is what keeps the
  engines' guarded idiom (``if self.persist is not None: begin``; later
  a guarded commit) clean: the join of the guarded and unguarded arms is
  {OPEN, UNKNOWN}, not a must-OPEN.  Flagged:

  - ``begin_txn`` when a transaction is must-OPEN (double begin);
  - ``record_data``/``record_meta`` when must-CLOSED (write after seal);
  - must-OPEN at the normal exit (transaction never sealed);
  - must-OPEN at the raise exit (no ``except: abort; raise`` protection
    -- an exception would leak the open transaction).

  Exception edges carry the statement's *post*-state (the protocol calls
  are atomic transitions), so ``begin; try: ...; except BaseException:
  abort; raise`` attributes the open state to the handler correctly.

* **The fold rule** (lexical + call graph).  Any function that mutates a
  quarantine map (``retire``/``apply_retire``/``apply_degrade`` on a
  receiver mentioning ``quarantine``) must journal: it must call
  ``append_resilience`` directly or transitively reach it through the
  :class:`~repro.lint.callgraph.ProjectIndex` (so ``self.
  _journal_resilience(...)`` counts).  Recovery *replay* applies
  already-journaled events by design and carries the one documented
  suppression.
"""

from __future__ import annotations

import ast

from repro.lint.callgraph import ProjectIndex
from repro.lint.contracts import TXN_MODEL
from repro.lint.flow import (
    EXIT,
    RAISE_EXIT,
    Dataflow,
    FlowNode,
    build_cfg,
    calls_in,
    dotted_name,
    functions_of,
    own_calls,
)
from repro.lint.framework import Checker, Reporter, SourceUnit

_UNKNOWN = "unknown"
_OPEN = "open"
_CLOSED = "closed"

#: dataflow state: frozenset of (receiver, typestate) pairs
_State = frozenset

_SCOPES = (
    "core/", "fast/", "memsim/", "persist/", "resilience/", "service/",
    "stack.py",
)


def _receiver(chain: tuple[str, ...]) -> str:
    """``("self","persist","begin_txn")`` -> ``"self.persist"``."""
    return ".".join(chain[:-1])


def _states_of(state: _State, receiver: str) -> set[str]:
    found = {st for recv, st in state if recv == receiver}
    return found or {_UNKNOWN}


class TxnTypestateChecker(Checker):
    code = "RL006"
    name = "txn-typestate"
    description = (
        "journaled mutations must sit between begin_txn and a seal on "
        "every path; quarantine folds must be journaled"
    )
    scopes = _SCOPES
    needs_project = True

    def __init__(self) -> None:
        self.model = TXN_MODEL
        self._project: ProjectIndex | None = None

    def prepare(self, project: ProjectIndex) -> None:
        self._project = project

    def check(self, unit: SourceUnit, report: Reporter) -> None:
        qualnames: dict[int, str] = {}
        if self._project is not None:
            for info in self._project.functions.values():
                if info.unit is unit:
                    qualnames[id(info.node)] = info.qualname
        for func in functions_of(unit.tree):
            self._check_typestate(func, report)
            self._check_fold_rule(func, qualnames.get(id(func)), report)

    # -- typestate over the CFG ----------------------------------------------

    def _check_typestate(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        report: Reporter,
    ) -> None:
        protocol = self.model.begin_calls | self.model.end_calls
        if not any(
            chain and chain[-1] in protocol
            for stmt in func.body
            for call in calls_in(stmt)
            for chain in (dotted_name(call.func),)
        ):
            return  # no transaction protocol here; nothing to track

        cfg = build_cfg(func)

        def transfer(node: FlowNode, state: _State) -> _State:
            assert node.stmt is not None
            pairs = set(state)
            for call in own_calls(node.stmt):
                chain = dotted_name(call.func)
                if not chain:
                    continue
                name, recv = chain[-1], _receiver(chain)
                if name in self.model.begin_calls:
                    pairs = {p for p in pairs if p[0] != recv}
                    pairs.add((recv, _OPEN))
                elif name in self.model.end_calls:
                    pairs = {p for p in pairs if p[0] != recv}
                    pairs.add((recv, _CLOSED))
            return frozenset(pairs)

        def join(a: _State, b: _State) -> _State:
            return a | b

        flow = Dataflow(cfg, transfer, join, frozenset()).solve()

        begins: dict[str, ast.Call] = {}
        for node in cfg.statements():
            state = flow.state_at(node.index)
            if state is None:
                continue  # unreachable statement
            for call in own_calls(node.stmt):
                chain = dotted_name(call.func)
                if not chain:
                    continue
                name, recv = chain[-1], _receiver(chain)
                if name in self.model.begin_calls:
                    begins.setdefault(recv, call)
                    if _states_of(state, recv) == {_OPEN}:
                        report(
                            call,
                            f"{name}() on {recv or 'the store'} while its "
                            "transaction is already open on every path "
                            "(double begin)",
                        )
                elif name in self.model.durable_calls:
                    if _states_of(state, recv) == {_CLOSED}:
                        report(
                            call,
                            f"durable {name}() on {recv or 'the store'} "
                            "after its transaction was sealed on every "
                            "path; writes must land between begin_txn "
                            "and the seal",
                        )

        for exit_index, what in (
            (EXIT, "returns"),
            (RAISE_EXIT, "raises"),
        ):
            exit_state = flow.state_at(exit_index)
            if exit_state is None:
                continue  # that exit is unreachable
            for recv, begin_call in begins.items():
                if _states_of(exit_state, recv) == {_OPEN}:
                    if exit_index == EXIT:
                        message = (
                            f"transaction on {recv or 'the store'} opened "
                            "here is still open when the function "
                            f"{what}; seal with commit_txn or abort_txn"
                        )
                    else:
                        message = (
                            f"exception path leaks the open transaction "
                            f"on {recv or 'the store'}; wrap the body in "
                            "try/except BaseException: abort_txn(); raise"
                        )
                    report(begin_call, message)

    # -- the fold rule (PR 6 quarantine-resurrection class) --------------------

    def _check_fold_rule(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str | None,
        report: Reporter,
    ) -> None:
        mutations: list[tuple[ast.Call, str]] = []
        direct_journal = False
        for stmt in func.body:
            for call in calls_in(stmt):
                chain = dotted_name(call.func)
                if not chain:
                    continue
                if chain[-1] in self.model.fold_journal_calls:
                    direct_journal = True
                if chain[-1] in self.model.fold_mutations and any(
                    any(marker in part.lower() for marker in
                        self.model.fold_receivers)
                    for part in chain[:-1]
                ):
                    mutations.append((call, chain[-1]))
        if not mutations or direct_journal:
            return
        if (
            qualname is not None
            and self._project is not None
            and self._project.reaches(
                qualname, self.model.fold_journal_calls
            )
        ):
            return
        for call, name in mutations:
            report(
                call,
                f"quarantine mutation {name}() is never journaled from "
                "this function; fold events must reach "
                "append_resilience (directly or via a helper) or "
                "recovery will resurrect retired blocks",
            )


__all__ = ["TxnTypestateChecker"]
