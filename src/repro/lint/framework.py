"""The ``repro.lint`` driver: files in, :class:`Diagnostic` list out.

The moving parts, smallest first:

* :class:`SourceUnit` -- one parsed file: source text, AST, and the
  ``subpath`` (path relative to the ``repro`` package root, e.g.
  ``core/ecc_mac/layout.py``) that checkers scope themselves by.
* :class:`Checker` -- one analysis.  Subclasses declare a ``code``
  (``RL001``...), the ``scopes`` they apply to, and implement
  :meth:`Checker.check`.  An optional :meth:`Checker.collect` pre-pass
  runs over *every* unit before any ``check`` call, so cross-file facts
  (e.g. the set of declared ``RegistryView`` fields) are complete before
  judgement starts.
* :func:`run_lint` -- discover files, parse, two-phase drive, apply
  inline suppressions and the optional baseline, return a
  :class:`LintResult`.

The framework is dependency-free (stdlib ``ast`` only) and the checkers
are plain classes, so tests can drive a single checker over a source
string via :func:`lint_text` without touching the filesystem.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.lint.baseline import Baseline
from repro.lint.diagnostics import Diagnostic, Severity, Suppressions

#: Directories never descended into during discovery.
_SKIP_DIRS = {
    "__pycache__", ".git", ".venv", "venv", "build", "dist", ".eggs",
}


@dataclass
class SourceUnit:
    """One parsed python file."""

    path: str  # as given / repo-relative, forward slashes
    subpath: str  # relative to the repro package root ("core/...", ...)
    source: str
    tree: ast.Module
    suppressions: Suppressions

    @classmethod
    def from_source(
        cls, source: str, path: str = "<string>", subpath: str | None = None
    ) -> "SourceUnit":
        if subpath is None:
            subpath = _subpath_of(path)
        return cls(
            path=path,
            subpath=subpath,
            source=source,
            tree=ast.parse(source, filename=path),
            suppressions=Suppressions.scan(source),
        )


def _subpath_of(path: str) -> str:
    """Path relative to the innermost ``repro`` package directory.

    ``src/repro/core/counters/delta.py`` -> ``core/counters/delta.py``;
    paths outside a ``repro`` tree fall back to their basename, which
    keeps fixture files scopeable by explicit override only.
    """
    parts = pathlib.PurePath(path).as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i + 1 :])
    return parts[-1]


Reporter = Callable[[ast.AST, str], None]


class Checker:
    """Base class for one lint analysis."""

    code: str = "RL000"
    name: str = "base"
    description: str = ""
    severity: Severity = Severity.ERROR
    #: ``subpath`` prefixes this checker runs on; empty means everywhere.
    scopes: tuple[str, ...] = ()
    #: ``subpath`` prefixes explicitly exempted (wins over ``scopes``).
    exempt_scopes: tuple[str, ...] = ()
    #: flow-aware checkers set this to receive the project-wide
    #: :class:`~repro.lint.callgraph.ProjectIndex` via :meth:`prepare`.
    needs_project = False

    def applies_to(self, subpath: str) -> bool:
        if any(subpath.startswith(p) for p in self.exempt_scopes):
            return False
        if not self.scopes:
            return True
        return any(subpath.startswith(p) for p in self.scopes)

    def prepare(self, project: Any) -> None:
        """Receive the project index (``needs_project`` checkers only).

        Runs once per lint drive, over the index of *every* unit --
        including units outside this checker's scopes, so symbol
        resolution and call-graph queries see the whole program even
        when judgement is scoped (or narrowed by ``--changed``).
        """

    def collect(self, unit: SourceUnit) -> None:
        """Cross-file fact gathering; runs on every unit first."""

    def check(self, unit: SourceUnit, report: Reporter) -> None:
        """Emit findings for one unit via ``report(node, message)``."""
        raise NotImplementedError


@dataclass
class LintResult:
    """Everything one lint run produced."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    grandfathered: list[Diagnostic] = field(default_factory=list)
    suppressed: int = 0
    stale_baseline: list[dict[str, str]] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[Diagnostic] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        """True when the run should exit non-zero."""
        findings = self.diagnostics + self.parse_errors
        return any(d.severity >= Severity.WARNING for d in findings)

    @property
    def exit_code(self) -> int:
        return 1 if self.failed else 0


def discover_files(paths: Sequence[str | pathlib.Path]) -> list[pathlib.Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(sub.parts):
                    out.append(sub)
        elif path.suffix == ".py":
            out.append(path)
    return out


def _relative_to_cwd(path: pathlib.Path) -> str:
    try:
        return path.resolve().relative_to(pathlib.Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def load_units(
    files: Iterable[pathlib.Path],
) -> tuple[list[SourceUnit], list[Diagnostic]]:
    units: list[SourceUnit] = []
    errors: list[Diagnostic] = []
    for path in files:
        display = _relative_to_cwd(path)
        try:
            units.append(
                SourceUnit.from_source(path.read_text(), path=display)
            )
        except SyntaxError as exc:
            errors.append(
                Diagnostic(
                    path=display,
                    line=exc.lineno or 1,
                    code="RL000",
                    message=f"syntax error: {exc.msg}",
                    severity=Severity.ERROR,
                )
            )
    return units, errors


def lint_units(
    units: Sequence[SourceUnit],
    checkers: Sequence[Checker],
    check_only: set[str] | None = None,
) -> tuple[list[Diagnostic], int]:
    """Three-phase drive: prepare, collect over all units, then check.

    ``check_only`` (resolved absolute posix paths) narrows the *check*
    phase -- the prepare/collect phases always see every unit, so the
    flow-aware checkers' symbol tables stay whole under ``--changed``.
    Returns (surviving diagnostics, count suppressed inline).
    """
    if any(checker.needs_project for checker in checkers):
        from repro.lint.callgraph import ProjectIndex

        project = ProjectIndex.build(units)
        for checker in checkers:
            if checker.needs_project:
                checker.prepare(project)
    for checker in checkers:
        for unit in units:
            if checker.applies_to(unit.subpath):
                checker.collect(unit)

    diagnostics: list[Diagnostic] = []
    suppressed = 0
    for unit in units:
        if check_only is not None and _resolved(unit.path) not in check_only:
            continue
        for checker in checkers:
            if not checker.applies_to(unit.subpath):
                continue

            def report(
                node: ast.AST,
                message: str,
                *,
                _unit: SourceUnit = unit,
                _checker: Checker = checker,
                severity: Severity | None = None,
            ) -> None:
                nonlocal suppressed
                diagnostic = Diagnostic(
                    path=_unit.path,
                    line=getattr(node, "lineno", 1),
                    column=getattr(node, "col_offset", 0),
                    code=_checker.code,
                    message=message,
                    severity=(
                        severity if severity is not None else _checker.severity
                    ),
                )
                if _unit.suppressions.hides(diagnostic):
                    suppressed += 1
                else:
                    diagnostics.append(diagnostic)

            checker.check(unit, report)
    diagnostics.sort()
    return diagnostics, suppressed


def _resolved(path: str) -> str:
    return pathlib.Path(path).resolve().as_posix()


def run_lint(
    paths: Sequence[str | pathlib.Path],
    checkers: Sequence[Checker] | None = None,
    baseline: Baseline | None = None,
    check_only: Sequence[str | pathlib.Path] | None = None,
) -> LintResult:
    """Lint files/directories and return the full result.

    ``check_only`` restricts which files produce findings (``--changed``
    mode); discovery, parsing and cross-file fact gathering still cover
    every file under ``paths``.
    """
    if checkers is None:
        from repro.lint.checkers import default_checkers

        checkers = default_checkers()
    files = discover_files(paths)
    units, parse_errors = load_units(files)
    only = (
        {_resolved(str(p)) for p in check_only}
        if check_only is not None
        else None
    )
    if only is not None:
        parse_errors = [
            e for e in parse_errors if _resolved(e.path) in only
        ]
    diagnostics, suppressed = lint_units(units, checkers, check_only=only)
    result = LintResult(
        diagnostics=diagnostics,
        suppressed=suppressed,
        files_checked=len(units),
        parse_errors=parse_errors,
    )
    if baseline is not None:
        result.diagnostics, result.grandfathered = baseline.split(diagnostics)
        result.stale_baseline = baseline.unmatched(diagnostics)
    return result


def lint_text(
    source: str,
    checkers: Sequence[Checker],
    subpath: str = "module.py",
    path: str | None = None,
) -> list[Diagnostic]:
    """Lint one source string (test helper; scope set via ``subpath``)."""
    unit = SourceUnit.from_source(
        source, path=path or subpath, subpath=subpath
    )
    diagnostics, _ = lint_units([unit], checkers)
    return diagnostics


__all__ = [
    "Checker",
    "LintResult",
    "SourceUnit",
    "discover_files",
    "lint_text",
    "lint_units",
    "load_units",
    "run_lint",
]
