"""The paper's bit-layout contracts, as one declarative table.

Every number here is fixed by the hardware design the paper describes,
not by any software choice -- together they are the interface contract
between the engine, the ECC side-band, and the metadata encodings:

* **MAC-in-ECC field** (Section 3, Figure 2): each 64-byte block's
  64-bit ECC lane carries a 56-bit Carter-Wegman MAC, 7 Hamming SEC-DED
  check bits over the MAC, and 1 even-parity bit over the ciphertext.
* **Delta-encoded counters** (Section 4): a 4 KB group of 64 blocks
  shares a 512-bit metadata block holding one 56-bit reference counter
  plus per-block deltas -- 7-bit deltas in the plain scheme (504 of 512
  bits), 6-bit deltas in the dual-length scheme, which frees 72 reserved
  bits used to widen one of the 4 delta-groups of 16 by 4 bits each.
* **Nonce composition** (Sections 2.2/3.2): keystream and MAC nonces
  pack a 48-bit block address with the (up to 56-bit) counter; the
  write-epoch extension shifts by 57 to stay clear of the counter field,
  and the AES nonce block caps the counter lane at 63 bits plus a
  domain-separation flag bit.

This module is the **single source of truth**: the runtime imports its
constants (``repro.crypto.mac``, ``repro.core.ecc_mac.layout``,
``repro.core.counters.*``), and the ``RL001`` checker cross-checks every
literal mask / shift / modulus / byte-width in ``core/``, ``ecc/`` and
``crypto/`` against the same table, so code and checker cannot drift
apart.  It must stay import-free (stdlib ``dataclasses`` only): the
lowest layers of the engine import it.

All derived relations are asserted at import time at the bottom of the
file -- editing one constant inconsistently fails before anything runs.
"""

from __future__ import annotations

from dataclasses import dataclass

# -- MAC-in-ECC field (Figure 2) ---------------------------------------------

MAC_BITS = 56  #: Carter-Wegman tag width (SGX-compatible truncation)
MAC_MASK = (1 << MAC_BITS) - 1
HAMMING_BITS = 7  #: SEC-DED check bits protecting the 56 MAC bits
CT_PARITY_BITS = 1  #: even-parity bit over the ciphertext (scrub aid)
MAC_CHECK_SHIFT = MAC_BITS  #: Hamming bits live at bits 56..62
CT_PARITY_SHIFT = 63  #: parity bit is the MSB of the ECC lane
ECC_FIELD_BITS = 64  #: one ECC lane per 64-byte block
ECC_FIELD_BYTES = 8

# -- blocks and groups (Sections 3-4) ----------------------------------------

BLOCK_BYTES = 64  #: one cache line / one ciphertext block
GROUP_BLOCKS = 64  #: blocks sharing one counter-metadata block
GROUP_BYTES = 4096  #: 4 KB of data per group
METADATA_BLOCK_BITS = 512  #: one 64-byte metadata block

# -- delta-encoded counters (Section 4, Figures 5-6) -------------------------

REFERENCE_BITS = 56  #: per-group frame-of-reference counter
DELTA_BITS = 7  #: plain delta scheme: 56 + 64*7 = 504 of 512 bits
BASE_DELTA_BITS = 6  #: dual-length scheme: every delta starts at 6 bits
EXTENSION_BITS = 4  #: widening adds 4 bits to each delta of one group
WIDE_DELTA_BITS = BASE_DELTA_BITS + EXTENSION_BITS  #: widened capacity
DELTA_GROUPS = 4  #: delta-groups per block-group
DELTAS_PER_DELTA_GROUP = GROUP_BLOCKS // DELTA_GROUPS  #: 16
RESERVED_BITS = 72  #: 512 - 56 - 64*6: the spare widening pool
WIDEN_INDEX_BITS = 2  #: which delta-group owns the extension
WIDEN_VALID_BITS = 1

# -- nonce composition (Sections 2.2/3.2) ------------------------------------

ADDRESS_BITS = 48  #: physical block address lane in keystream/MAC nonces
COUNTER_NONCE_BITS = 56  #: counter lane in the fast-mode keystream nonce
NONCE_COUNTER_BITS = 63  #: counter lane in the AES nonce block (+flag bit)
EPOCH_SHIFT = 57  #: write-epoch extension clears the 56-bit counter lane

# -- machine widths (not layout, but legal everywhere) ------------------------

WORD_BITS = 64
GENERIC_WIDTHS = frozenset({8, 16, 32, 64, 128})


@dataclass(frozen=True)
class BitField:
    """One named field of a packed layout."""

    name: str
    shift: int
    width: int

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    @property
    def end(self) -> int:
        return self.shift + self.width


@dataclass(frozen=True)
class LayoutSpec:
    """A packed bit layout: contiguous, non-overlapping, exhaustive."""

    name: str
    total_bits: int
    fields: tuple[BitField, ...]

    def validate(self) -> None:
        position = 0
        for field in sorted(self.fields, key=lambda f: f.shift):
            if field.shift != position:
                raise ValueError(
                    f"{self.name}: field {field.name} starts at bit "
                    f"{field.shift}, expected {position}"
                )
            position = field.end
        if position != self.total_bits:
            raise ValueError(
                f"{self.name}: fields cover {position} bits of "
                f"{self.total_bits}"
            )


#: The Figure 2 ECC lane, field by field.
ECC_FIELD_LAYOUT = LayoutSpec(
    name="ecc_field",
    total_bits=ECC_FIELD_BITS,
    fields=(
        BitField("mac", 0, MAC_BITS),
        BitField("mac_check", MAC_CHECK_SHIFT, HAMMING_BITS),
        BitField("ct_parity", CT_PARITY_SHIFT, CT_PARITY_BITS),
    ),
)

#: The Figure 6 dual-length counter-metadata block, field by field.
DUAL_LENGTH_LAYOUT = LayoutSpec(
    name="dual_length_metadata",
    total_bits=METADATA_BLOCK_BITS,
    fields=(
        BitField("reference", 0, REFERENCE_BITS),
        BitField(
            "base_deltas", REFERENCE_BITS, GROUP_BLOCKS * BASE_DELTA_BITS
        ),
        BitField(
            "extensions",
            REFERENCE_BITS + GROUP_BLOCKS * BASE_DELTA_BITS,
            DELTAS_PER_DELTA_GROUP * EXTENSION_BITS,
        ),
        BitField(
            "widened_index",
            REFERENCE_BITS
            + GROUP_BLOCKS * BASE_DELTA_BITS
            + DELTAS_PER_DELTA_GROUP * EXTENSION_BITS,
            WIDEN_INDEX_BITS,
        ),
        BitField(
            "widened_valid",
            REFERENCE_BITS
            + GROUP_BLOCKS * BASE_DELTA_BITS
            + DELTAS_PER_DELTA_GROUP * EXTENSION_BITS
            + WIDEN_INDEX_BITS,
            WIDEN_VALID_BITS,
        ),
        BitField(
            "unused",
            REFERENCE_BITS
            + GROUP_BLOCKS * BASE_DELTA_BITS
            + DELTAS_PER_DELTA_GROUP * EXTENSION_BITS
            + WIDEN_INDEX_BITS
            + WIDEN_VALID_BITS,
            METADATA_BLOCK_BITS
            - REFERENCE_BITS
            - GROUP_BLOCKS * BASE_DELTA_BITS
            - DELTAS_PER_DELTA_GROUP * EXTENSION_BITS
            - WIDEN_INDEX_BITS
            - WIDEN_VALID_BITS,
        ),
    ),
)

LAYOUTS: tuple[LayoutSpec, ...] = (ECC_FIELD_LAYOUT, DUAL_LENGTH_LAYOUT)

# -- checker-facing tables ----------------------------------------------------

#: Name -> value.  RL001 flags any module-level ``NAME = <int literal>``
#: whose normalized name (leading underscores stripped, upper-cased)
#: appears here with a different value: copies of contract constants may
#: exist, but they may not drift.
CONTRACT_CONSTANTS: dict[str, int] = {
    "MAC_BITS": MAC_BITS,
    "MAC_MASK": MAC_MASK,
    "HAMMING_BITS": HAMMING_BITS,
    "MAC_CHECK_BITS": HAMMING_BITS,
    "CT_PARITY_BITS": CT_PARITY_BITS,
    "MAC_CHECK_SHIFT": MAC_CHECK_SHIFT,
    "CT_PARITY_SHIFT": CT_PARITY_SHIFT,
    "ECC_FIELD_BITS": ECC_FIELD_BITS,
    "ECC_FIELD_BYTES": ECC_FIELD_BYTES,
    "BLOCK_BYTES": BLOCK_BYTES,
    "GROUP_BLOCKS": GROUP_BLOCKS,
    "GROUP_BYTES": GROUP_BYTES,
    "METADATA_BLOCK_BITS": METADATA_BLOCK_BITS,
    "REFERENCE_BITS": REFERENCE_BITS,
    "DELTA_BITS": DELTA_BITS,
    "BASE_DELTA_BITS": BASE_DELTA_BITS,
    "EXTENSION_BITS": EXTENSION_BITS,
    "WIDE_DELTA_BITS": WIDE_DELTA_BITS,
    "DELTA_GROUPS": DELTA_GROUPS,
    "DELTAS_PER_DELTA_GROUP": DELTAS_PER_DELTA_GROUP,
    "RESERVED_BITS": RESERVED_BITS,
    "ADDRESS_BITS": ADDRESS_BITS,
    "COUNTER_NONCE_BITS": COUNTER_NONCE_BITS,
    "NONCE_COUNTER_BITS": NONCE_COUNTER_BITS,
    "EPOCH_SHIFT": EPOCH_SHIFT,
}

#: Bit widths a literal all-ones mask ``(1 << k) - 1`` may legally have
#: (beyond widths <= 8 and the machine widths, which are always legal).
CONTRACT_WIDTHS: frozenset[int] = frozenset(
    {
        MAC_BITS,
        HAMMING_BITS,
        CT_PARITY_BITS,
        DELTA_BITS,
        BASE_DELTA_BITS,
        WIDE_DELTA_BITS,
        REFERENCE_BITS,
        ADDRESS_BITS,
        COUNTER_NONCE_BITS,
        NONCE_COUNTER_BITS,
        ECC_FIELD_BITS,
    }
)

#: Literal shift amounts beyond 8 that the layouts legitimize.
CONTRACT_SHIFTS: frozenset[int] = frozenset(
    {
        MAC_CHECK_SHIFT,
        CT_PARITY_SHIFT,
        EPOCH_SHIFT,
        ADDRESS_BITS,
        MAC_BITS,
        NONCE_COUNTER_BITS,
    }
)

#: Legal literal ``to_bytes``/``from_bytes`` byte counts beyond the
#: power-of-two machine sizes.
CONTRACT_BYTE_SIZES: frozenset[int] = frozenset(
    {
        ECC_FIELD_BYTES,
        BLOCK_BYTES,
        GROUP_BYTES,
        MAC_BITS // 8,  # 7-byte packed MAC / counter lanes
        ADDRESS_BITS // 8,  # 6-byte packed address lane
    }
)

#: Legal literal moduli / divisors >= 8 (grouping and word arithmetic).
CONTRACT_MODULI: frozenset[int] = frozenset(
    {
        8,
        ECC_FIELD_BYTES,
        BLOCK_BYTES,
        GROUP_BLOCKS,
        GROUP_BYTES,
        DELTAS_PER_DELTA_GROUP,
        METADATA_BLOCK_BITS,
    }
)

#: Identifier (suffix) -> contracted width.  RL001 flags
#: ``<identifier> & <literal mask>`` where the mask width disagrees --
#: the ``tag & 0xFF`` class of bug.
IDENTIFIER_WIDTHS: dict[str, int] = {
    "mac": MAC_BITS,
    "tag": MAC_BITS,
    "mac_check": HAMMING_BITS,
    "ct_parity": CT_PARITY_BITS,
    "reference": REFERENCE_BITS,
}


# -- flow-contract tables (RL005-RL007) ---------------------------------------
#
# The flow-aware checkers are driven by the same philosophy as the bit
# tables above: one declarative model, checkers that only interpret it.
# Everything here is a *name* set -- the analyses are intentionally
# name-based (the AST has no types), and every set below errs on the
# side the checker can afford: source sets narrow (miss a source ->
# miss a finding, never a false alarm), sanitizer sets narrow (an
# unlisted declassifier -> a finding to fix or document, never silence).


@dataclass(frozen=True)
class TaintModel:
    """Sources, sinks and sanitizers of the RL005 secret-taint checker.

    *Key material* is anything derived from a tenant or engine secret:
    the service's per-tenant 48-byte keys, AES round keys, MAC/PRF
    subkeys, the master ``secret_seed``.  It may flow through crypto
    primitives (whose outputs -- ciphertext, MAC tags, digests -- are
    *designed* to be stored) but must never itself reach persistence,
    log/metric labels, or wire frames.
    """

    #: calls whose return value IS key material (the sanctioned
    #: key-derivation functions; RL005 widens this set project-wide to
    #: any function that returns one of these results unsanitized)
    source_calls: frozenset[str]
    #: parameter names that carry key material into a function
    source_params: frozenset[str]
    #: attribute names that hold key material on an object
    source_attrs: frozenset[str]
    #: calls that *declassify*: their output is safe to store even when
    #: an argument is key material (ciphertext, tags, digests, sizes)
    sanitizers: frozenset[str]
    #: method/function names whose arguments become durable state
    persistence_sinks: frozenset[str]
    #: names whose arguments end up in logs, metric names, traces
    telemetry_sinks: frozenset[str]
    #: names whose arguments leave the process on the wire
    wire_sinks: frozenset[str]

    def sink_kind(self, name: str) -> str | None:
        if name in self.persistence_sinks:
            return "persistence"
        if name in self.telemetry_sinks:
            return "telemetry"
        if name in self.wire_sinks:
            return "wire"
        return None


TAINT_MODEL = TaintModel(
    source_calls=frozenset({
        "derive_key",      # service.tenant: the per-tenant 48-byte key
        "expand_key",      # crypto.aes: AES round keys
        "key_schedule",
        "derive_subkeys",  # MAC/PRF subkey derivation
        "split_key",
    }),
    source_params=frozenset({
        "key", "aes_key", "mac_key", "tree_key", "prf_key", "master_key",
        "round_keys", "subkeys", "secret_seed",
    }),
    source_attrs=frozenset({
        "aes_key", "mac_key", "tree_key", "prf_key", "master_key",
        "round_keys", "secret_seed", "_key", "_aes_key", "_mac_key",
        "_tree_key",
    }),
    sanitizers=frozenset({
        # crypto primitives: their outputs are designed to be stored
        "encrypt", "decrypt", "encrypt_block", "decrypt_block",
        "keystream", "keystream_block", "keystream_blocks", "tag", "mac",
        "digest", "hexdigest", "prf",
        # size/shape/identity queries reveal no key bits
        "len", "bool", "isinstance", "type", "id", "range",
    }),
    persistence_sinks=frozenset({
        "record_data", "record_meta", "append_resilience",
        "journal_append", "checkpoint_write", "write_checkpoint",
        "write_text", "write_bytes", "write_state", "dump", "dumps",
    }),
    telemetry_sinks=frozenset({
        "counter", "gauge", "histogram", "log", "info", "warning",
        "error", "debug", "exception", "print", "observe",
    }),
    wire_sinks=frozenset({
        "encode_frame", "write_frame", "to_response",
    }),
)


@dataclass(frozen=True)
class TxnModel:
    """The durable-write typestate protocol RL006 enforces.

    The protocol (DESIGN §9): every durable mutation is mirrored into an
    open journal transaction, and the ``commit_txn`` seal is the
    acknowledgement barrier.  Resilience-plane folds journal through
    self-sealing ``append_resilience`` records instead.
    """

    #: call opening a transaction (CLOSED -> OPEN)
    begin_calls: frozenset[str]
    #: calls sealing/discarding one (OPEN -> CLOSED)
    end_calls: frozenset[str]
    #: durable mutations legal only while a transaction is open
    durable_calls: frozenset[str]
    #: quarantine-map mutations that must be journaled on every path
    #: (the PR 6 quarantine-resurrection bug class)
    fold_mutations: frozenset[str]
    #: receiver chains fold mutations are matched against
    fold_receivers: frozenset[str]
    #: journaling calls that satisfy the fold rule (directly, or
    #: transitively through the call graph)
    fold_journal_calls: frozenset[str]


TXN_MODEL = TxnModel(
    begin_calls=frozenset({"begin_txn"}),
    end_calls=frozenset({"commit_txn", "abort_txn"}),
    durable_calls=frozenset({"record_data", "record_meta"}),
    fold_mutations=frozenset({"retire", "apply_retire", "apply_degrade"}),
    fold_receivers=frozenset({"quarantine"}),
    fold_journal_calls=frozenset({"append_resilience"}),
)


@dataclass(frozen=True)
class AsyncModel:
    """What RL007 considers unsafe inside ``service/`` coroutines."""

    #: dotted calls that block the event loop outright
    blocking_calls: frozenset[tuple[str, ...]]
    #: method names that do synchronous file I/O on their receiver
    blocking_methods: frozenset[str]
    #: attributes naming shard-owned state; mutations of one of these
    #: must not straddle an ``await`` (one-event-loop-per-shard
    #: serialization, DESIGN §12)
    shard_state_attrs: frozenset[str]
    #: exception names that must never be swallowed in a coroutine
    must_propagate: frozenset[str]


ASYNC_MODEL = AsyncModel(
    blocking_calls=frozenset({
        ("time", "sleep"),
        ("subprocess", "run"),
        ("subprocess", "check_call"),
        ("subprocess", "check_output"),
        ("os", "system"),
        ("socket", "create_connection"),
    }),
    blocking_methods=frozenset({
        "read_text", "write_text", "read_bytes", "write_bytes",
        "mkdir", "unlink", "touch", "rename", "rmdir",
    }),
    shard_state_attrs=frozenset({
        "tenants", "quotas", "retired", "draining",
        # PR 9 additions: the shard's idempotency cache and the
        # client's per-shard breaker map are loop-owned mutable state
        # exactly like the tenant tables.
        "_idem", "_breakers",
    }),
    must_propagate=frozenset({"CancelledError"}),
)


def validate() -> None:
    """Check every derived relation between the constants.

    Raises ``ValueError``/``AssertionError`` on any inconsistency; called
    at import so a bad edit fails immediately and loudly.
    """
    for layout in LAYOUTS:
        layout.validate()
    if MAC_BITS + HAMMING_BITS + CT_PARITY_BITS != ECC_FIELD_BITS:
        raise ValueError("ECC lane fields must fill exactly 64 bits")
    if ECC_FIELD_BYTES * 8 != ECC_FIELD_BITS:
        raise ValueError("ECC field byte/bit widths disagree")
    if GROUP_BLOCKS * BLOCK_BYTES != GROUP_BYTES:
        raise ValueError("group geometry disagrees")
    if REFERENCE_BITS + GROUP_BLOCKS * DELTA_BITS > METADATA_BLOCK_BITS:
        raise ValueError("7-bit delta layout overflows the metadata block")
    spare = METADATA_BLOCK_BITS - REFERENCE_BITS - GROUP_BLOCKS * BASE_DELTA_BITS
    if spare != RESERVED_BITS:
        raise ValueError(
            f"dual-length spare pool is {spare} bits, contract says "
            f"{RESERVED_BITS}"
        )
    if DELTAS_PER_DELTA_GROUP * EXTENSION_BITS >= RESERVED_BITS:
        raise ValueError("widening extension must leave room for the index")
    if DELTA_GROUPS > 1 << WIDEN_INDEX_BITS:
        raise ValueError("widened-group index field too narrow")
    if EPOCH_SHIFT <= COUNTER_NONCE_BITS:
        raise ValueError("epoch lane overlaps the counter lane")


validate()

__all__ = [
    "ADDRESS_BITS",
    "ASYNC_MODEL",
    "AsyncModel",
    "TAINT_MODEL",
    "TXN_MODEL",
    "TaintModel",
    "TxnModel",
    "BASE_DELTA_BITS",
    "BLOCK_BYTES",
    "BitField",
    "CONTRACT_BYTE_SIZES",
    "CONTRACT_CONSTANTS",
    "CONTRACT_MODULI",
    "CONTRACT_SHIFTS",
    "CONTRACT_WIDTHS",
    "COUNTER_NONCE_BITS",
    "CT_PARITY_BITS",
    "CT_PARITY_SHIFT",
    "DELTAS_PER_DELTA_GROUP",
    "DELTA_BITS",
    "DELTA_GROUPS",
    "DUAL_LENGTH_LAYOUT",
    "ECC_FIELD_BITS",
    "ECC_FIELD_BYTES",
    "ECC_FIELD_LAYOUT",
    "EPOCH_SHIFT",
    "EXTENSION_BITS",
    "GENERIC_WIDTHS",
    "GROUP_BLOCKS",
    "GROUP_BYTES",
    "HAMMING_BITS",
    "IDENTIFIER_WIDTHS",
    "LAYOUTS",
    "LayoutSpec",
    "MAC_BITS",
    "MAC_CHECK_SHIFT",
    "MAC_MASK",
    "METADATA_BLOCK_BITS",
    "NONCE_COUNTER_BITS",
    "REFERENCE_BITS",
    "RESERVED_BITS",
    "WIDEN_INDEX_BITS",
    "WIDEN_VALID_BITS",
    "WIDE_DELTA_BITS",
    "WORD_BITS",
    "validate",
]
