"""Baseline files: grandfathered findings that do not fail the build.

A baseline is the escape hatch for adopting a new checker on an old
tree: record today's findings once, fail only on *new* ones, burn the
recorded ones down over time.  Entries match on ``(path, code,
message)`` -- never the line number, which drifts with every unrelated
edit above the finding.

Policy note (ISSUE 3): the shipped tree carries **no** baseline entries
under ``src/repro/core``, ``src/repro/ecc`` or ``src/repro/crypto`` --
the contracted packages stay clean at head, enforced by
``tests/lint/test_tree_clean.py``.
"""

from __future__ import annotations

import json
import pathlib

from repro.lint.diagnostics import Diagnostic

BASELINE_SCHEMA = "repro.lint-baseline/1"


class Baseline:
    """A set of grandfathered findings."""

    def __init__(self, entries: list[dict[str, str]] | None = None):
        self.entries: list[dict[str, str]] = list(entries or [])
        self._keys = {
            (e["path"], e["code"], e["message"]) for e in self.entries
        }

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, diagnostic: Diagnostic) -> bool:
        return diagnostic.baseline_key in self._keys

    def split(
        self, diagnostics: list[Diagnostic]
    ) -> tuple[list[Diagnostic], list[Diagnostic]]:
        """Partition into (new, grandfathered)."""
        fresh = [d for d in diagnostics if d not in self]
        known = [d for d in diagnostics if d in self]
        return fresh, known

    def unmatched(self, diagnostics: list[Diagnostic]) -> list[dict[str, str]]:
        """Baseline entries no current finding matches (fixed or stale)."""
        seen = {d.baseline_key for d in diagnostics}
        return [
            e
            for e in self.entries
            if (e["path"], e["code"], e["message"]) not in seen
        ]

    @classmethod
    def from_diagnostics(cls, diagnostics: list[Diagnostic]) -> "Baseline":
        entries = [
            {"path": d.path, "code": d.code, "message": d.message}
            for d in sorted(set(diagnostics))
        ]
        return cls(entries)

    # -- persistence --------------------------------------------------------

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "Baseline":
        payload = json.loads(pathlib.Path(path).read_text())
        if payload.get("schema") != BASELINE_SCHEMA:
            raise ValueError(
                f"unsupported baseline schema {payload.get('schema')!r} "
                f"(expected {BASELINE_SCHEMA!r})"
            )
        return cls(payload["entries"])

    def dump(self, path: str | pathlib.Path) -> None:
        payload = {
            "schema": BASELINE_SCHEMA,
            "entries": sorted(
                self.entries,
                key=lambda e: (e["path"], e["code"], e["message"]),
            ),
        }
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


__all__ = ["Baseline", "BASELINE_SCHEMA"]
