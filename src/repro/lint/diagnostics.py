"""Diagnostics, severities and inline suppressions for ``repro.lint``.

A :class:`Diagnostic` is one finding, formatted the way every other
compiler-shaped tool formats findings::

    src/repro/crypto/prf.py:22: RL001 shift by uncontracted amount 30

Inline suppressions follow the pylint idiom but under our own banner so
they cannot collide with other tools::

    value = (value ^ (value >> 30)) * K  # repro-lint: disable=RL001

A comment-only suppression line applies to the *next* source line (for
statements too dense to carry a trailing comment), and
``# repro-lint: disable-file=CODE`` anywhere in a file suppresses the
code for the whole module.  Suppressions are deliberately per-code:
there is no blanket ``disable=all``.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """How bad a finding is; the exit code only counts WARNING and up."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: ``path:line: CODE message``."""

    path: str  # repo-relative, forward slashes
    line: int
    code: str
    message: str
    severity: Severity = Severity.ERROR
    column: int = 0

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used by baseline matching.

        Line numbers are excluded on purpose: a baseline must survive
        unrelated edits above the finding.
        """
        return (self.path, self.code, self.message)

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
        }


_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<codes>[A-Z]{2}[0-9]{3}(?:\s*,\s*[A-Z]{2}[0-9]{3})*)"
)


@dataclass
class Suppressions:
    """Parsed ``# repro-lint:`` directives of one source file."""

    #: line number -> set of codes disabled on that line
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: codes disabled for the whole file
    file_wide: set[str] = field(default_factory=set)

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        supp = cls()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            codes = {c.strip() for c in match.group("codes").split(",")}
            if match.group("kind") == "disable-file":
                supp.file_wide |= codes
                continue
            target = lineno
            if text.lstrip().startswith("#"):
                # Comment-only directive: governs the next line.
                target = lineno + 1
            supp.by_line.setdefault(target, set()).update(codes)
        return supp

    def hides(self, diagnostic: Diagnostic) -> bool:
        if diagnostic.code in self.file_wide:
            return True
        return diagnostic.code in self.by_line.get(diagnostic.line, set())


__all__ = ["Severity", "Diagnostic", "Suppressions"]
