"""Unified metrics registry: typed counters, gauges and histograms.

Design constraints, in order:

1. **One plane.**  Every component of the stack registers its counters
   here under hierarchical dotted names (``engine.read.mac_check``,
   ``dram.ctrl.row_hit``, ``counters.delta.reencode``), so one snapshot
   of one registry is the complete accounting of a run.
2. **Hot paths stay hot.**  A metric is a tiny object with a public
   ``value``; components resolve it *once* at init (get-or-create) and
   then call ``inc()`` -- no name lookups, no allocation, no formatting
   on the data path.
3. **Compatibility.**  The pre-existing ad-hoc stat structs survive as
   :class:`RegistryView` subclasses: same attribute names, same ``+=``
   mutation style, but the storage is shared registry metrics, so the
   old ``backend.stats.counter_fetches`` and the new
   ``registry.total("engine.traffic.counter_fetch")`` are *the same
   number by construction*.

Instances and labels: a metric identity is ``(name, labels)``.
Components that need per-instance accounting (two ``SecureMemory``
objects in one process must not share ``engine.read.total``) attach an
``inst`` label drawn from :meth:`MetricRegistry.instance`; aggregation
across instances is a sum over label sets of the same name
(:meth:`MetricRegistry.total`).

A process-wide default registry is always available via
:func:`get_registry`; :func:`use_registry` scopes a fresh registry over
a run (the CLI does this for ``--metrics-out`` so a run's snapshot
contains that run only).
"""

from __future__ import annotations

import json
import pathlib
from contextlib import contextmanager
from typing import Any, Iterator, TypeVar

SNAPSHOT_SCHEMA = "repro.metrics/1"

#: label set attached to a metric identity
Labels = dict[str, str]
#: one serialized metric in a snapshot (heterogeneous by metric type)
SnapshotEntry = dict[str, Any]
_MetricKey = tuple[str, tuple[tuple[str, str], ...]]
_MetricT = TypeVar("_MetricT", bound="Counter | Histogram")


class Counter:
    """Monotonically increasing accumulator (int or float)."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels | None = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def snapshot_entry(self) -> SnapshotEntry:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }

    def __repr__(self) -> str:
        return f"<{self.kind} {self.name}{self.labels or ''}={self.value}>"


class Gauge(Counter):
    """Point-in-time value (set/inc/dec)."""

    kind = "gauge"
    __slots__ = ()

    def set(self, value: int | float) -> None:
        self.value = value

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount


class Histogram:
    """Distribution summary: count/total/min/max plus optional buckets.

    ``buckets`` is a sorted tuple of inclusive upper bounds; one
    overflow bucket is added implicitly.  Bucket-less histograms still
    track count/total/min/max, which is what the span report needs.
    """

    kind = "histogram"
    __slots__ = (
        "name", "labels", "buckets", "bucket_counts",
        "count", "total", "min", "max",
    )

    def __init__(
        self,
        name: str,
        labels: Labels | None = None,
        buckets: tuple[float, ...] = (),
    ) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self.buckets:
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def snapshot_entry(self) -> SnapshotEntry:
        entry: SnapshotEntry = {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        if self.buckets:
            entry["buckets"] = {
                "bounds": list(self.buckets),
                "counts": list(self.bucket_counts),
            }
        return entry

    def __repr__(self) -> str:
        return (
            f"<histogram {self.name}{self.labels or ''} "
            f"count={self.count} mean={self.mean:.3g}>"
        )


class MetricRegistry:
    """Get-or-create store of metrics keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._metrics: dict[_MetricKey, Counter | Histogram] = {}
        self._instance_seq: dict[str, int] = {}

    @staticmethod
    def _key(name: str, labels: Labels) -> _MetricKey:
        return name, tuple(sorted(labels.items()))

    def _get_or_create(
        self, cls: type[_MetricT], name: str, labels: Labels, **kwargs: Any
    ) -> _MetricT:
        key = self._key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels, **kwargs)
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} with labels {labels} already registered "
                f"as a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: tuple[float, ...] = (), **labels: str
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    def instance(self, kind: str) -> str:
        """A unique instance-label value for one component instance."""
        n = self._instance_seq.get(kind, 0)
        self._instance_seq[kind] = n + 1
        return f"{kind}{n}"

    # -- inspection ---------------------------------------------------------

    def metrics(self) -> list[Counter | Histogram]:
        return list(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Counter | Histogram]:
        return iter(self._metrics.values())

    def total(self, name: str) -> int | float:
        """Sum of one counter/gauge name across all label sets."""
        return sum(
            m.value
            for m in self._metrics.values()
            if m.name == name and isinstance(m, Counter)
        )

    def subtree(self, prefix: str) -> dict[str, int | float]:
        """name -> cross-label total for every name under a dotted prefix."""
        out: dict[str, int | float] = {}
        dotted = prefix + "."
        for metric in self._metrics.values():
            if not isinstance(metric, Counter):
                continue
            if metric.name == prefix or metric.name.startswith(dotted):
                out[metric.name] = out.get(metric.name, 0) + metric.value
        return out

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            [m.snapshot_entry() for m in self._metrics.values()]
        )

    def reset(self) -> None:
        """Zero every metric, keeping registrations (and identities)."""
        for metric in self._metrics.values():
            metric.reset()


class MetricsSnapshot:
    """Immutable-ish capture of a registry, diffable and JSON-portable."""

    def __init__(self, entries: list[SnapshotEntry]) -> None:
        self.entries = list(entries)

    @staticmethod
    def _entry_key(entry: SnapshotEntry) -> _MetricKey:
        return entry["name"], tuple(sorted(entry.get("labels", {}).items()))

    def totals(self) -> dict[str, int | float]:
        """name -> cross-label sum for counters and gauges."""
        out: dict[str, int | float] = {}
        for entry in self.entries:
            if entry["type"] in ("counter", "gauge"):
                out[entry["name"]] = out.get(entry["name"], 0) + entry["value"]
        return out

    def value(self, name: str, **labels: str) -> int | float | None:
        key = (name, tuple(sorted(labels.items())))
        for entry in self.entries:
            if self._entry_key(entry) == key:
                return entry.get("value", entry.get("count"))
        return None

    def diff(self, older: MetricsSnapshot) -> MetricsSnapshot:
        """What happened between ``older`` and this snapshot.

        Counters and histogram count/total subtract; gauges keep their
        newer value (a gauge is a level, not a flow).
        """
        old = {self._entry_key(e): e for e in older.entries}
        out: list[SnapshotEntry] = []
        for entry in self.entries:
            before = old.get(self._entry_key(entry))
            entry = dict(entry)
            if before is not None:
                if entry["type"] == "counter":
                    entry["value"] = entry["value"] - before["value"]
                elif entry["type"] == "histogram":
                    entry["count"] = entry["count"] - before["count"]
                    entry["total"] = entry["total"] - before["total"]
                    entry["mean"] = (
                        entry["total"] / entry["count"] if entry["count"] else 0.0
                    )
            out.append(entry)
        return MetricsSnapshot(out)

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": SNAPSHOT_SCHEMA,
            "totals": self.totals(),
            "metrics": self.entries,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def dump(self, path: str | pathlib.Path) -> None:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> MetricsSnapshot:
        if payload.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"unsupported metrics schema {payload.get('schema')!r} "
                f"(expected {SNAPSHOT_SCHEMA!r})"
            )
        return cls(payload["metrics"])

    @classmethod
    def load(cls, path: str | pathlib.Path) -> MetricsSnapshot:
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))


# -- compatibility views -----------------------------------------------------


def _view_property(attr: str) -> property:
    def _get(self: RegistryView) -> int | float:
        return self._metrics_[attr].value

    def _set(self: RegistryView, value: int | float) -> None:
        self._metrics_[attr].value = value

    return property(_get, _set)


class RegistryView:
    """Base for the legacy stat structs, now backed by registry metrics.

    A subclass declares ``_VIEW_FIELDS`` mapping attribute names to
    metric names (absolute, or relative when the instance passes a
    ``prefix``).  ``__init_subclass__`` synthesizes read/write
    properties so existing ``stats.row_hits += 1`` call sites keep
    working verbatim -- the storage is just a shared
    :class:`Counter` now.

    With no explicit registry a view owns a private one, preserving the
    old standalone-dataclass semantics (tests construct these bare).
    """

    _VIEW_FIELDS: dict[str, str] = {}

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        for attr in cls._VIEW_FIELDS:
            setattr(cls, attr, _view_property(attr))

    def __init__(
        self,
        *,
        registry: MetricRegistry | None = None,
        labels: Labels | None = None,
        prefix: str | None = None,
        **initial: int,
    ) -> None:
        unknown = set(initial) - set(self._VIEW_FIELDS)
        if unknown:
            raise TypeError(
                f"unknown counter field(s) {sorted(unknown)} for "
                f"{type(self).__name__}"
            )
        registry = registry if registry is not None else MetricRegistry()
        labels = labels or {}
        self._registry_ = registry
        self._metrics_: dict[str, Counter] = {}
        for attr, metric_name in self._VIEW_FIELDS.items():
            if prefix:
                metric_name = f"{prefix}.{metric_name}"
            counter = registry.counter(metric_name, **labels)
            self._metrics_[attr] = counter
            value = initial.get(attr, 0)
            if value:
                counter.inc(value)

    def metric(self, attr: str) -> Counter:
        """The shared Counter object behind one view attribute."""
        return self._metrics_[attr]

    def as_dict(self) -> dict[str, int | float]:
        return {attr: self._metrics_[attr].value for attr in self._VIEW_FIELDS}

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"{type(self).__name__}({body})"


# -- default registry ---------------------------------------------------------

_REGISTRY_STACK: list[MetricRegistry] = [MetricRegistry()]


def get_registry() -> MetricRegistry:
    """The currently active registry (innermost :func:`use_registry`)."""
    return _REGISTRY_STACK[-1]


def default_registry() -> MetricRegistry:
    """The process-wide root registry (never popped)."""
    return _REGISTRY_STACK[0]


@contextmanager
def use_registry(registry: MetricRegistry) -> Iterator[MetricRegistry]:
    """Scope ``registry`` as the default for components built inside."""
    _REGISTRY_STACK.append(registry)
    try:
        yield registry
    finally:
        _REGISTRY_STACK.pop()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "MetricsSnapshot",
    "RegistryView",
    "SNAPSHOT_SCHEMA",
    "get_registry",
    "default_registry",
    "use_registry",
]
