"""The central metric catalog: every dotted metric name, declared once.

Rationale (ISSUE 3 / RL003): a typo'd metric name does not crash -- it
silently creates a *parallel* metric that no report, no dashboard and no
exhibit ever reads.  This module enumerates every metric the stack may
register, with its kind and the traffic class it contributes to, and is
consumed from three directions:

* :mod:`repro.obs.report` derives its traffic-breakdown classes from the
  ``traffic_class`` column instead of a private table;
* the ``RL003`` checker in :mod:`repro.lint.checkers.rl003_metrics`
  resolves every literal metric name in the source tree against it, so
  a typo is a lint error instead of a silently-empty dashboard;
* DESIGN.md section 7's metric -> exhibit map documents the same names.

Dynamically named families (one metric per probe site, per counter
scheme, per error outcome) are covered either by enumerating the closed
set of instances (counter schemes, error outcomes) or, for genuinely
open sets, by a prefix entry (``probe.*``).

This module must not import anything above the metrics plane: checkers
and reports both pull it in.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MetricSpec:
    """One declared metric name (or ``prefix.*`` family)."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    description: str
    traffic_class: str | None = None  # report section, if a DRAM class

    @property
    def is_family(self) -> bool:
        return self.name.endswith(".*")

    @property
    def prefix(self) -> str:
        """The dotted prefix of a family entry (with trailing dot)."""
        return self.name[:-1]  # "probe.*" -> "probe."


def _engine_specs() -> list[MetricSpec]:
    return [
        MetricSpec("engine.read.total", "counter", "authenticated reads"),
        MetricSpec("engine.read.mac_check", "counter", "MAC verifications"),
        MetricSpec("engine.read.mac_fail", "counter",
                   "MAC mismatches (integrity faults)"),
        MetricSpec("engine.read.tree_fail", "counter",
                   "Bonsai-tree verification failures"),
        MetricSpec("engine.read.correction", "counter",
                   "data blocks healed by flip-and-check"),
        MetricSpec("engine.read.mac_self_correction", "counter",
                   "stored MACs healed by their Hamming bits"),
        MetricSpec("engine.write.total", "counter", "authenticated writes"),
        MetricSpec("engine.write.group_reencrypt", "counter",
                   "whole-group re-encryptions on counter overflow"),
        MetricSpec("engine.traffic.demand_read", "counter",
                   "demand data reads", traffic_class="data"),
        MetricSpec("engine.traffic.demand_write", "counter",
                   "demand data writes", traffic_class="data"),
        MetricSpec("engine.traffic.counter_fetch", "counter",
                   "counter-block DRAM reads", traffic_class="counter"),
        MetricSpec("engine.traffic.tree_fetch", "counter",
                   "interior-node DRAM reads", traffic_class="tree"),
        MetricSpec("engine.traffic.mac_fetch", "counter",
                   "separate-MAC DRAM reads", traffic_class="mac"),
        MetricSpec("engine.traffic.metadata_writeback", "counter",
                   "metadata write-backs",
                   traffic_class="metadata writeback"),
        MetricSpec("engine.traffic.reencrypt_block", "counter",
                   "blocks rewritten by re-encryption",
                   traffic_class="re-encryption"),
    ]


#: Per-scheme counter events; one full set per counter representation.
COUNTER_SCHEMES = ("monolithic", "split", "delta", "dual_length")
_COUNTER_EVENTS = {
    "write": "counter-bump requests",
    "increment": "plain increments",
    "reset": "converged-delta resets (Figure 5b)",
    "reencode": "delta re-encodes (Figure 5c)",
    "widen": "dual-length widenings (Figure 6)",
    "reencrypt": "group re-encryptions (Figure 5a)",
    "global_reencrypt": "whole-memory re-encryptions",
}


def _counter_specs() -> list[MetricSpec]:
    out = []
    for scheme in COUNTER_SCHEMES + ("",):  # "" = bare CounterStats views
        prefix = f"counters.{scheme}" if scheme else "counters"
        for event, description in _COUNTER_EVENTS.items():
            out.append(
                MetricSpec(
                    f"{prefix}.{event}", "counter",
                    f"{scheme or 'scheme'}: {description}",
                )
            )
    return out


def _memsim_specs() -> list[MetricSpec]:
    cache = [
        MetricSpec(f"cache.{n}", "counter", d)
        for n, d in [
            ("read_hit", "cache read hits"),
            ("read_miss", "cache read misses"),
            ("write_hit", "cache write hits"),
            ("write_miss", "cache write misses"),
            ("writeback", "dirty evictions written back"),
        ]
    ]
    dram = [
        MetricSpec(f"dram.{n}", "counter", d)
        for n, d in [
            ("read", "DRAM read transactions"),
            ("write", "DRAM write transactions"),
            ("row_hit", "row-buffer hits"),
            ("row_closed", "accesses to a closed row"),
            ("row_conflict", "row-buffer conflicts"),
            ("latency_total", "summed access latency (cycles)"),
            ("busy_cycles", "bank-busy cycles"),
            ("refresh_stall", "accesses delayed by refresh"),
        ]
    ]
    ctrl = [
        MetricSpec(f"dram.ctrl.{n}", "counter", d)
        for n, d in [
            ("serviced", "requests scheduled by FR-FCFS"),
            ("row_hit", "scheduled as row hits"),
            ("row_closed", "scheduled against a closed row"),
            ("row_conflict", "scheduled as row conflicts"),
            ("latency_total", "summed queue+service latency"),
            ("reordered", "serviced before an older request"),
        ]
    ]
    return cache + dram + ctrl


def _resilience_specs() -> list[MetricSpec]:
    outcomes = [
        "ce_retry", "ce_mac_repair", "ce_flip_and_check",
        "due", "sdc", "retired", "degraded",
    ]
    out = [
        MetricSpec(f"resilience.outcome.{o}", "counter",
                   f"error events resolved as {o}")
        for o in outcomes
    ]
    out += [
        MetricSpec("resilience.cycles_spent", "counter",
                   "recovery cycles charged"),
        MetricSpec("resilience.spares_remaining", "gauge",
                   "spare blocks left in the quarantine pool"),
        MetricSpec("scrub.blocks_scanned", "counter",
                   "blocks swept by the parity scrubber"),
        MetricSpec("scrub.blocks_skipped", "counter",
                   "quarantined blocks skipped by the scrubber"),
        MetricSpec("scrub.data_parity_fail", "counter",
                   "scrub-detected data parity failures"),
        MetricSpec("scrub.mac_parity_fail", "counter",
                   "scrub-detected MAC parity failures"),
        MetricSpec("scrub.repair_read", "counter",
                   "full authenticated re-reads issued by scrub"),
        MetricSpec("resilience.errlog.evicted", "counter",
                   "error-log records rotated out of the bounded window"),
        MetricSpec("resilience.spares_exhausted", "counter",
                   "retirements refused because the spare pool was empty"),
    ]
    return out


def _fast_specs() -> list[MetricSpec]:
    """The batched-kernel plane: kernel table and batch facade."""
    return [
        MetricSpec("fast.kernel.calls", "counter",
                   "batched kernel invocations"),
        MetricSpec("fast.kernel.blocks", "counter",
                   "blocks processed by batched kernels"),
        MetricSpec("fast.paranoid.checks", "counter",
                   "paranoid-mode fast/reference cross-checks"),
        MetricSpec("fast.paranoid.divergence", "counter",
                   "paranoid-mode divergences (must stay zero)"),
        MetricSpec("fast.paranoid.sampled", "counter",
                   "kernel calls selected by the sampled-paranoid "
                   "schedule (1-in-N, seeded)"),
        MetricSpec("fast.paranoid.skipped", "counter",
                   "kernel calls the sampled-paranoid schedule let "
                   "through unchecked"),
        MetricSpec("fast.batch.reads", "counter",
                   "reads queued through the batch facade"),
        MetricSpec("fast.batch.writes", "counter",
                   "writes queued through the batch facade"),
        MetricSpec("fast.batch.flushes", "counter",
                   "batch queue flushes"),
        MetricSpec("fast.batch.groups", "counter",
                   "block-group commits performed by batch flushes"),
        MetricSpec("fast.fallback.scalar", "counter",
                   "queued operations handed back to the scalar engine"),
    ]


def _persist_specs() -> list[MetricSpec]:
    """The durability plane: write-ahead journal, checkpoints, recovery."""
    return [
        MetricSpec("persist.txn.commit", "counter",
                   "journaled write transactions sealed (the ack point)"),
        MetricSpec("persist.txn.abort", "counter",
                   "open transactions dropped before sealing"),
        MetricSpec("persist.group_commit.txns", "counter",
                   "group-commit transactions sealed (one per batch "
                   "flush covering >1 write)"),
        MetricSpec("persist.group_commit.writes", "counter",
                   "engine-level writes amortized into group commits"),
        MetricSpec("persist.txn.data_blocks", "counter",
                   "data-block images carried by committed records"),
        MetricSpec("persist.txn.meta_groups", "counter",
                   "counter-metadata blocks carried by committed records"),
        MetricSpec("persist.journal.append", "counter",
                   "journal record payload writes"),
        MetricSpec("persist.journal.seal", "counter",
                   "journal record seals (atomic commit marks)"),
        MetricSpec("persist.journal.bytes", "counter",
                   "journal payload bytes appended"),
        MetricSpec("persist.journal.truncate", "counter",
                   "journal truncations (post-checkpoint)"),
        MetricSpec("persist.journal.live_records", "gauge",
                   "records currently in the journal region"),
        MetricSpec("persist.checkpoint.write", "counter",
                   "epoch checkpoints written and sealed"),
        MetricSpec("persist.checkpoint.bytes", "counter",
                   "ciphertext bytes captured by checkpoints"),
        MetricSpec("persist.checkpoint.deferred", "counter",
                   "due checkpoints deferred by a storage fault "
                   "(the piggybacked write's ack stands)"),
        MetricSpec("persist.resilience.append", "counter",
                   "resilience-plane events journaled"),
        MetricSpec("recovery.run", "counter",
                   "recovery state-machine invocations"),
        MetricSpec("recovery.redo.records", "counter",
                   "journal records replayed by redo"),
        MetricSpec("recovery.discarded.torn", "counter",
                   "torn journal tails discarded by the scan"),
        MetricSpec("recovery.discarded.unsealed", "counter",
                   "unsealed journal tails discarded by the scan"),
        MetricSpec("recovery.verify.root_ok", "counter",
                   "recoveries whose rebuilt root matched"),
        MetricSpec("recovery.verify.fail", "counter",
                   "recoveries refused by the verify phase"),
        MetricSpec("recovery.resilience.replayed", "counter",
                   "resilience events surfaced during recovery"),
    ]


def _stack_specs() -> list[MetricSpec]:
    """The composed-stack facade (:class:`repro.stack.EngineStack`)."""
    return [
        MetricSpec("stack.writes", "counter",
                   "writes entering the composed stack"),
        MetricSpec("stack.reads", "counter",
                   "reads entering the composed stack"),
        MetricSpec("stack.flushes", "counter",
                   "batch flushes requested through the stack"),
        MetricSpec("stack.recoveries", "counter",
                   "full-stack crash recoveries performed"),
    ]


#: Service request operations (one counter + one latency histogram each).
SERVICE_OPS = (
    "provision", "write", "batch", "read", "stat",
    "drain", "retire", "drain_shard", "ping",
)

#: Typed rejection codes the shard meters (plus the internal bucket).
SERVICE_REJECTIONS = (
    "tenant_not_found", "quota_exceeded", "drain_in_progress",
    "shard_unavailable", "deadline_exceeded", "overloaded",
    "degraded", "storage_fault", "internal",
)

#: The storage-fault taxonomy (closed set, mirrors faultfs.FaultKind).
FAULTFS_KINDS = (
    "eio", "enospc", "short_write", "lost_before_fsync", "crash_rename",
)


def _service_specs() -> list[MetricSpec]:
    """The multi-tenant serving layer (:mod:`repro.service`)."""
    out = [
        MetricSpec(f"service.request.{op}", "counter",
                   f"'{op}' requests dispatched")
        for op in SERVICE_OPS
    ]
    out += [
        MetricSpec(f"service.latency.{op}", "histogram",
                   f"'{op}' request latency (ms, includes engine work)")
        for op in SERVICE_OPS
    ]
    out += [
        MetricSpec(f"service.rejected.{code}", "counter",
                   f"requests refused with the '{code}' error code")
        for code in SERVICE_REJECTIONS
    ]
    out += [
        MetricSpec("service.bytes.written", "counter",
                   "payload bytes acknowledged by write/batch ops"),
        MetricSpec("service.bytes.read", "counter",
                   "payload bytes returned by read ops"),
        MetricSpec("service.conn.accepted", "counter",
                   "protocol connections accepted"),
        MetricSpec("service.conn.closed", "counter",
                   "protocol connections closed"),
        MetricSpec("service.recovery.tenants", "counter",
                   "tenants recovered on worker (re)start"),
        MetricSpec("service.drain.tenants", "counter",
                   "tenants drained (flush + checkpoint)"),
        MetricSpec("service.shard.restarts", "counter",
                   "shard workers restarted by the supervisor"),
        MetricSpec("service.tenants.active", "gauge",
                   "tenants currently serving reads and writes"),
        MetricSpec("service.tenants.draining", "gauge",
                   "tenants refusing writes while draining"),
        MetricSpec("service.tenants.retired", "gauge",
                   "tenants durably retired on this shard"),
        # -- ISSUE 9: deadlines, overload shedding, idempotent replay --
        MetricSpec("service.deadline.expired", "counter",
                   "requests refused because their deadline_ms expired "
                   "in the dispatch queue"),
        MetricSpec("service.deadline.wait_ms", "histogram",
                   "dispatch-queue wait per executed request (ms)"),
        MetricSpec("service.overload.shed", "counter",
                   "requests shed at the queue-depth bound (charged "
                   "nothing against quotas)"),
        MetricSpec("service.queue.depth", "gauge",
                   "shard dispatch-queue depth"),
        MetricSpec("service.idem.hits", "counter",
                   "requests answered from the idempotency-key cache"),
        MetricSpec("service.idem.stored", "counter",
                   "ok responses stored under an idempotency key"),
        MetricSpec("service.degraded.entered", "counter",
                   "tenants entering degraded read-only mode"),
        MetricSpec("service.degraded.active", "gauge",
                   "tenants currently in degraded read-only mode"),
        # -- ISSUE 9: client-side circuit breaker + retry accounting --
        MetricSpec("service.breaker.opened", "counter",
                   "circuit-breaker closed->open transitions"),
        MetricSpec("service.breaker.half_open", "counter",
                   "circuit-breaker open->half-open probe admissions"),
        MetricSpec("service.breaker.closed", "counter",
                   "circuit-breaker half-open->closed recoveries"),
        MetricSpec("service.breaker.fast_fail", "counter",
                   "requests refused locally while a breaker was open"),
        MetricSpec("service.client.sends", "counter",
                   "request frames actually written to a shard socket"),
        MetricSpec("service.client.retries", "counter",
                   "client retries after a retryable refusal"),
    ]
    return out


def _faultfs_specs() -> list[MetricSpec]:
    """The fault-injecting file layer (:mod:`repro.faultfs`)."""
    out = [
        MetricSpec("faultfs.steps", "counter",
                   "file operations numbered by the fault layer"),
        MetricSpec("faultfs.fsyncs", "counter",
                   "file-content fsync barriers executed"),
        MetricSpec("faultfs.dir_fsyncs", "counter",
                   "directory-entry fsync barriers executed"),
        MetricSpec("faultfs.crashes", "counter",
                   "simulated power losses (crash() calls)"),
        MetricSpec("faultfs.rolled_back", "counter",
                   "unsynced effects rolled back by simulated power loss"),
    ]
    out += [
        MetricSpec(f"faultfs.injected.{kind}", "counter",
                   f"injected '{kind}' storage faults")
        for kind in FAULTFS_KINDS
    ]
    return out


_SPECS: list[MetricSpec] = (
    _engine_specs()
    + _counter_specs()
    + _memsim_specs()
    + _resilience_specs()
    + _fast_specs()
    + _persist_specs()
    + _stack_specs()
    + _service_specs()
    + _faultfs_specs()
    + [
        MetricSpec("probe.*", "histogram",
                   "wallclock span per probe point (one per site)"),
    ]
)

CATALOG: dict[str, MetricSpec] = {spec.name: spec for spec in _SPECS}
FAMILIES: tuple[MetricSpec, ...] = tuple(
    spec for spec in _SPECS if spec.is_family
)


def resolve(name: str) -> MetricSpec | None:
    """The spec a concrete metric name falls under, or None."""
    spec = CATALOG.get(name)
    if spec is not None:
        return spec
    for family in FAMILIES:
        if name.startswith(family.prefix):
            return family
    return None


def resolve_prefix(prefix: str) -> bool:
    """Whether any cataloged name could start with ``prefix``.

    Used for f-string metric names, where only the literal head is
    statically known (``f"resilience.outcome.{outcome.value}"``).
    """
    for name in CATALOG:
        if name.startswith(prefix):
            return True
    return any(
        family.prefix.startswith(prefix) or prefix.startswith(family.prefix)
        for family in FAMILIES
    )


def metric_names() -> list[str]:
    """All concrete cataloged names, sorted (families excluded)."""
    return sorted(name for name in CATALOG if not name.endswith(".*"))


def traffic_classes() -> dict[str, tuple[str, ...]]:
    """Traffic class -> contributing metric names, in catalog order."""
    out: dict[str, list[str]] = {}
    for spec in _SPECS:
        if spec.traffic_class is not None:
            out.setdefault(spec.traffic_class, []).append(spec.name)
    return {cls: tuple(names) for cls, names in out.items()}


__all__ = [
    "CATALOG",
    "COUNTER_SCHEMES",
    "FAMILIES",
    "FAULTFS_KINDS",
    "SERVICE_OPS",
    "SERVICE_REJECTIONS",
    "MetricSpec",
    "metric_names",
    "resolve",
    "resolve_prefix",
    "traffic_classes",
]
