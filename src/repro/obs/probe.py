"""Profiling hooks: near-zero-cost probe points for instrumented hot paths.

A :class:`ProbePoint` is created once, at component init, resolving its
registry histogram eagerly (``probe.<name>``).  On the hot path it is
used as a context manager::

    with self._probe_read:          # SecureMemory.read
        ... authenticated read ...

While probes are globally disabled (the default), ``__enter__`` and
``__exit__`` reduce to one class-attribute check each -- no clock reads,
no lookups, and **no allocations**, which
``tests/obs/test_probe.py::test_disabled_probe_is_allocation_free``
enforces.  When enabled (:func:`set_probes` / the :func:`probes`
context manager / the CLI's ``--trace-out``/``--stats`` flags), each
exit observes the span's wallclock duration into the histogram and, if
the active tracer is enabled, emits a Chrome-trace slice.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from types import TracebackType
from typing import Any, Callable, Iterator, TypeVar

from repro.obs.metrics import Histogram, MetricRegistry, get_registry
from repro.obs.trace import get_tracer


class _ProbeState:
    """Global enable flag (class attribute: cheap to read, easy to flip)."""

    enabled = False


def probes_enabled() -> bool:
    return _ProbeState.enabled


def set_probes(enabled: bool) -> bool:
    """Set the global probe flag; returns the previous value."""
    previous = _ProbeState.enabled
    _ProbeState.enabled = bool(enabled)
    return previous


@contextmanager
def probes(enabled: bool = True) -> Iterator[None]:
    """Scope the global probe flag over a block of code."""
    previous = set_probes(enabled)
    try:
        yield
    finally:
        set_probes(previous)


class ProbePoint:
    """One named profiling site, resolved against a registry at init.

    Not re-entrant: a probe point guards one non-recursive code path
    (each instrumented component owns its own points).
    """

    __slots__ = ("name", "cat", "_hist", "_start_ns")

    def __init__(
        self,
        name: str,
        cat: str = "probe",
        registry: MetricRegistry | None = None,
    ) -> None:
        self.name = name
        self.cat = cat
        registry = registry if registry is not None else get_registry()
        # Resolved once, here -- the hot path never touches the registry.
        self._hist = registry.histogram(f"probe.{name}")
        self._start_ns = 0

    def __enter__(self) -> ProbePoint:
        if _ProbeState.enabled:
            self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        start = self._start_ns
        if start and _ProbeState.enabled:
            self._start_ns = 0
            dur_us = (time.perf_counter_ns() - start) / 1000.0
            self._hist.observe(dur_us)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.complete_now(
                    self.name, dur_us, cat=self.cat, tid=self.cat
                )
        return False

    @property
    def histogram(self) -> Histogram:
        """The registry histogram this point observes into."""
        return self._hist


_F = TypeVar("_F", bound=Callable[..., Any])


def profiled(
    name: str | None = None,
    cat: str = "probe",
    registry: MetricRegistry | None = None,
) -> Callable[[_F], _F]:
    """Decorator form: profile every call of a function.

    The probe point (and its histogram) binds at decoration time, i.e.
    against the registry active when the function is defined.
    """

    def wrap(fn: _F) -> _F:
        point = ProbePoint(name or fn.__qualname__, cat=cat, registry=registry)

        @functools.wraps(fn)
        def inner(*args: Any, **kwargs: Any) -> Any:
            with point:
                return fn(*args, **kwargs)

        inner.__probe__ = point  # type: ignore[attr-defined]
        return inner  # type: ignore[return-value]

    return wrap


__all__ = [
    "ProbePoint",
    "probes",
    "probes_enabled",
    "profiled",
    "set_probes",
]
