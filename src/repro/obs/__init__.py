"""Observability subsystem: the shared instrumentation plane.

The paper's claims are accounting claims -- metadata traffic eliminated,
re-encryptions avoided, IPC recovered -- so every layer of the stack
needs to count the same way, on the same timebase, into the same place.
This package provides that plane:

* :mod:`repro.obs.metrics` -- a process-wide registry of typed counters,
  gauges and histograms with labels and hierarchical dotted names
  (``engine.read.mac_check``, ``dram.ctrl.row_hit``,
  ``counters.delta.reencode``), plus snapshot/diff and JSON export.
  The existing ad-hoc stat structs (``EngineCounters``,
  ``ControllerStats``, ``TimingStats``, ``CacheStats``, ``DramStats``,
  ``CounterStats``) are now thin views over registry counters.
* :mod:`repro.obs.trace` -- a bounded-ring-buffer structured event
  tracer with wallclock *and* simulated-cycle timestamps, exporting
  Chrome ``trace_event`` JSON that opens directly in Perfetto.
* :mod:`repro.obs.probe` -- context-manager/decorator profiling hooks
  with a global enable flag; instrumented hot paths resolve their
  metric objects once at init and cost ~nothing while disabled.
* :mod:`repro.obs.report` -- the ``repro stats`` terminal report: top
  spans, per-component counters, and the traffic breakdown by metadata
  class (data / MAC / counter / tree).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    MetricsSnapshot,
    RegistryView,
    get_registry,
    use_registry,
)
from repro.obs.probe import (
    ProbePoint,
    probes,
    probes_enabled,
    profiled,
    set_probes,
)
from repro.obs.report import render_report, traffic_breakdown
from repro.obs.trace import EventTracer, get_tracer, use_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "MetricsSnapshot",
    "RegistryView",
    "get_registry",
    "use_registry",
    "EventTracer",
    "get_tracer",
    "use_tracer",
    "ProbePoint",
    "probes",
    "probes_enabled",
    "profiled",
    "set_probes",
    "render_report",
    "traffic_breakdown",
]
