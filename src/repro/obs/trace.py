"""Structured event tracing with Chrome ``trace_event`` export.

The tracer is a bounded ring buffer of dict events in the (documented,
stable) Chrome trace-event format, so a run's trace opens directly in
Perfetto / ``chrome://tracing`` with no conversion step.

Two timebases coexist, kept apart as two trace "processes":

* **wallclock** (pid 1) -- microseconds since the tracer was created;
  used by the profiling probes (host-side cost of the Python model);
* **simulated cycles** (pid 2) -- the simulator's own clock, one cycle
  rendered as one microsecond; used by the timing backend so DRAM-level
  behaviour (demand reads, metadata fetches, re-encryption bursts) lays
  out on the axis the paper's numbers live on.

Every emit method is a no-op while ``enabled`` is False, so leaving
trace calls in hot paths costs one attribute check.  The ring buffer
(``capacity`` events) bounds memory on long runs; ``dropped`` counts
evictions so an exported trace is honest about truncation.
"""

from __future__ import annotations

import json
import pathlib
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

TRACE_SCHEMA = "repro.trace/1"

#: one Chrome trace-event dict (heterogeneous by phase)
TraceEvent = dict[str, Any]

#: trace-event "process" ids for the two timebases
WALL_PID = 1
SIM_PID = 2

_PROCESS_NAMES = {WALL_PID: "wallclock", SIM_PID: "simulated-cycles"}


class EventTracer:
    """Bounded-buffer tracer emitting Chrome trace-event dicts."""

    def __init__(self, capacity: int = 100_000, enabled: bool = False) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.enabled = enabled
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0
        self._t0_ns = time.perf_counter_ns()
        self._tids: dict[tuple[int, str], int] = {}

    # -- plumbing -----------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events evicted from the ring buffer so far."""
        return self.emitted - len(self.events)

    def wall_us(self) -> float:
        """Wallclock microseconds since tracer creation."""
        return (time.perf_counter_ns() - self._t0_ns) / 1000.0

    def _tid(self, pid: int, label: str) -> int:
        key = (pid, label)
        tid = self._tids.get(key)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[key] = tid
        return tid

    def _emit(self, event: TraceEvent) -> None:
        self.events.append(event)
        self.emitted += 1

    @staticmethod
    def _pid(clock: str) -> int:
        return SIM_PID if clock == "sim" else WALL_PID

    # -- emit API -----------------------------------------------------------

    def instant(
        self,
        name: str,
        cat: str = "event",
        tid: str = "main",
        clock: str = "wall",
        ts: float | None = None,
        **args: Any,
    ) -> None:
        """A zero-duration marker (re-encryption fired, block retired...)."""
        if not self.enabled:
            return
        pid = self._pid(clock)
        event: TraceEvent = {
            "name": name,
            "ph": "i",
            "s": "t",
            "cat": cat,
            "ts": self.wall_us() if ts is None else float(ts),
            "pid": pid,
            "tid": self._tid(pid, tid),
        }
        if args:
            event["args"] = args
        self._emit(event)

    def complete(
        self,
        name: str,
        ts: float,
        dur: float,
        cat: str = "span",
        tid: str = "main",
        clock: str = "sim",
        **args: Any,
    ) -> None:
        """A slice with explicit start and duration (trace-event "X")."""
        if not self.enabled:
            return
        pid = self._pid(clock)
        event: TraceEvent = {
            "name": name,
            "ph": "X",
            "cat": cat,
            "ts": float(ts),
            "dur": max(float(dur), 0.0),
            "pid": pid,
            "tid": self._tid(pid, tid),
        }
        if args:
            event["args"] = args
        self._emit(event)

    def complete_now(
        self,
        name: str,
        dur_us: float,
        cat: str = "span",
        tid: str = "main",
        **args: Any,
    ) -> None:
        """A wallclock slice ending now and lasting ``dur_us``."""
        if not self.enabled:
            return
        self.complete(
            name,
            ts=self.wall_us() - dur_us,
            dur=dur_us,
            cat=cat,
            tid=tid,
            clock="wall",
            **args,
        )

    def counter(
        self,
        name: str,
        value: int | float,
        tid: str = "counters",
        clock: str = "wall",
        ts: float | None = None,
    ) -> None:
        """A counter-track sample (trace-event "C")."""
        if not self.enabled:
            return
        pid = self._pid(clock)
        self._emit(
            {
                "name": name,
                "ph": "C",
                "ts": self.wall_us() if ts is None else float(ts),
                "pid": pid,
                "tid": self._tid(pid, tid),
                "args": {"value": value},
            }
        )

    @contextmanager
    def span(
        self, name: str, cat: str = "span", tid: str = "main", **args: Any
    ) -> Iterator[None]:
        """Measure a wallclock slice around a block of work."""
        if not self.enabled:
            yield
            return
        start = self.wall_us()
        try:
            yield
        finally:
            self.complete(
                name,
                ts=start,
                dur=self.wall_us() - start,
                cat=cat,
                tid=tid,
                clock="wall",
                **args,
            )

    def clear(self) -> None:
        self.events.clear()
        self.emitted = 0

    # -- export -------------------------------------------------------------

    def chrome_trace(self) -> dict[str, Any]:
        """The full trace as a Chrome trace-event JSON object."""
        metadata: list[TraceEvent] = []
        for pid, process in _PROCESS_NAMES.items():
            metadata.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": process},
                }
            )
        for (pid, label), tid in sorted(self._tids.items(), key=lambda i: i[1]):
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
        return {
            "traceEvents": metadata + list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": TRACE_SCHEMA,
                "emitted": self.emitted,
                "dropped": self.dropped,
            },
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.chrome_trace(), indent=indent)

    def write(self, path: str | pathlib.Path) -> int:
        """Write the Chrome trace JSON; returns the event count written."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        trace = self.chrome_trace()
        path.write_text(json.dumps(trace) + "\n")
        events: list[TraceEvent] = trace["traceEvents"]
        return len(events)


# -- default tracer -----------------------------------------------------------

_TRACER_STACK: list[EventTracer] = [EventTracer(enabled=False)]


def get_tracer() -> EventTracer:
    """The currently active tracer (disabled no-op tracer by default)."""
    return _TRACER_STACK[-1]


@contextmanager
def use_tracer(tracer: EventTracer) -> Iterator[EventTracer]:
    """Scope ``tracer`` as the default for code run inside."""
    _TRACER_STACK.append(tracer)
    try:
        yield tracer
    finally:
        _TRACER_STACK.pop()


__all__ = [
    "EventTracer",
    "TRACE_SCHEMA",
    "WALL_PID",
    "SIM_PID",
    "get_tracer",
    "use_tracer",
]
