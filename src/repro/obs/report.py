"""Terminal stats report over a metrics registry or snapshot.

Three sections, in the order an investigation reads them:

1. **Traffic by metadata class** -- the accounting the paper's whole
   argument rests on: how many DRAM transactions were demand data, and
   how many were MAC / counter / tree metadata (Figures 1 and 8 are
   both statements about shrinking the non-data rows).
2. **Component counters** -- every counter/gauge total, grouped by the
   first segment of its dotted name (engine, dram, cache, counters,
   scrub, resilience, ...).
3. **Top spans** -- the ``probe.*`` histograms ranked by total time,
   i.e. where a slow run actually spent itself.

The same renderer backs ``repro stats <metrics.json>`` and the
``--stats`` flag of the exhibit subcommands.
"""

from __future__ import annotations

from repro.obs.catalog import traffic_classes
from repro.obs.metrics import MetricRegistry, MetricsSnapshot


def _format_table(
    title: str, headers: list[str], rows: list[list[object]]
) -> str:
    # Imported lazily: repro.harness pulls in the engine stack, which
    # itself imports repro.obs -- a module-level import would be a cycle.
    from repro.harness.reporting import format_table

    return format_table(title, headers, rows)

#: metadata-class -> contributing metric names, derived from the central
#: metric catalog's ``traffic_class`` column so the report, the RL003
#: checker and DESIGN section 7 all read the same declaration.
TRAFFIC_CLASSES = traffic_classes()


def traffic_breakdown(totals: dict[str, int | float]) -> dict[str, int | float]:
    """DRAM transactions per metadata class, from snapshot totals.

    Returns ``{class: count, ..., "total": sum}``; classes with no
    contributing metrics present count zero.
    """
    out: dict[str, int | float] = {}
    for cls, names in TRAFFIC_CLASSES.items():
        out[cls] = sum(totals.get(name, 0) for name in names)
    out["total"] = sum(out.values())
    return out


def _snapshot_of(source: MetricRegistry | MetricsSnapshot) -> MetricsSnapshot:
    if isinstance(source, MetricRegistry):
        return source.snapshot()
    if isinstance(source, MetricsSnapshot):
        return source
    raise TypeError(
        "render_report expects a MetricRegistry or MetricsSnapshot, "
        f"got {type(source).__name__}"
    )


def _traffic_section(totals: dict[str, int | float]) -> str | None:
    breakdown = traffic_breakdown(totals)
    total = breakdown.pop("total")
    if not total:
        return None
    rows: list[list[object]] = [
        [cls, count, f"{count / total:.1%}"]
        for cls, count in breakdown.items()
    ]
    rows.append(["total", total, "100.0%"])
    return _format_table(
        "Traffic breakdown by metadata class (DRAM transactions)",
        ["class", "transactions", "share"],
        rows,
    )


def _counters_section(totals: dict[str, int | float]) -> str | None:
    by_component: dict[str, list[tuple[str, int | float]]] = {}
    for name, value in sorted(totals.items()):
        component = name.split(".", 1)[0]
        if component == "probe":
            continue  # rendered as spans below
        by_component.setdefault(component, []).append((name, value))
    if not by_component:
        return None
    rows: list[list[object]] = []
    for component in sorted(by_component):
        for name, value in by_component[component]:
            rows.append([name, value])
    return _format_table(
        "Counters by component (totals across instances)",
        ["metric", "value"],
        rows,
    )


def _spans_section(snapshot: MetricsSnapshot, top: int) -> str | None:
    spans = [
        entry
        for entry in snapshot.entries
        if entry["type"] == "histogram"
        and entry["name"].startswith("probe.")
        and entry["count"]
    ]
    if not spans:
        return None
    spans.sort(key=lambda e: e["total"], reverse=True)
    rows: list[list[object]] = []
    for entry in spans[:top]:
        rows.append(
            [
                entry["name"][len("probe."):],
                entry["count"],
                round(entry["total"] / 1000.0, 3),
                round(entry["mean"], 1),
                round(entry["max"] or 0.0, 1),
            ]
        )
    return _format_table(
        f"Top spans by total time (showing {len(rows)} of {len(spans)})",
        ["span", "count", "total ms", "mean us", "max us"],
        rows,
    )


def render_report(
    source: MetricRegistry | MetricsSnapshot, top_spans: int = 12
) -> str:
    """Render the full stats report from a registry or snapshot."""
    snapshot = _snapshot_of(source)
    totals = snapshot.totals()
    sections: list[str | None] = [
        _traffic_section(totals),
        _counters_section(totals),
        _spans_section(snapshot, top_spans),
    ]
    kept = [s for s in sections if s]
    if not kept:
        return "no metrics recorded"
    return "\n\n".join(kept)


__all__ = ["TRAFFIC_CLASSES", "traffic_breakdown", "render_report"]
