"""Timing model of the memory-encryption engine.

Implements the same two-method backend interface as
:class:`repro.memsim.cpu.system.PlainMemoryBackend`, but every LLC miss
additionally generates the metadata traffic the paper's evaluation is
about:

Read path (demand miss):

1. the data block is fetched from DRAM;
2. in parallel, the block's counter is obtained: metadata-cache hit (a
   handful of cycles) or a DRAM fetch of the counter block plus a
   Bonsai-tree walk that stops at the first cached (already-verified)
   ancestor -- each missing node is another DRAM transaction;
3. the MAC is obtained: *free* on MAC-in-ECC configurations (it rides the
   ECC side-band of the data burst, Section 3.1); on the separate-MAC
   baseline it is a metadata-cache lookup and possibly one more DRAM
   transaction;
4. fixed on-chip latencies are added: AES-CTR keystream (overlapped with
   the fetch, tail cost only), the GF-multiply MAC check, and -- for
   encoded counter schemes -- the 2-cycle delta decode unit
   (Section 5.3).

The read latency returned to the core is ``max(data, counter-chain, mac
fetch) + fixed tail`` -- the three DRAM activities proceed concurrently on
different addresses, while the tail is serial.

Write path (dirty eviction): counter increment (read-modify-write of the
counter block through the metadata cache, including a verify walk on
miss), data write, separate-MAC write if configured.  Writes are posted,
so the returned latency only matters as DRAM occupancy.  Counter-scheme
events (resets, re-encodes, re-encryptions) are recorded; re-encryption
*traffic* is optionally modelled (off by default, matching the paper's
"our simulation models do not include the separate re-encryption logic").
"""

from __future__ import annotations

from repro.core.engine.config import EngineConfig
from repro.lint.contracts import BLOCK_BYTES
from repro.memsim.cache.cache import AccessType, Cache
from repro.memsim.dram.system import DramSystem
from repro.obs.metrics import (
    MetricRegistry,
    RegistryView,
    get_registry,
    use_registry,
)
from repro.obs.probe import ProbePoint
from repro.obs.trace import EventTracer, get_tracer

_META_CACHE_HIT_CYCLES = 3


class TimingStats(RegistryView):
    """Traffic breakdown accumulated over a run.

    Registry view: these are the ``engine.traffic.*`` metrics that feed
    the report's traffic-breakdown-by-metadata-class section; the old
    attribute names keep working.
    """

    _VIEW_FIELDS = {
        "demand_reads": "engine.traffic.demand_read",
        "demand_writes": "engine.traffic.demand_write",
        # counter-block DRAM reads
        "counter_fetches": "engine.traffic.counter_fetch",
        # interior-node DRAM reads
        "tree_fetches": "engine.traffic.tree_fetch",
        # separate-MAC DRAM reads
        "mac_fetches": "engine.traffic.mac_fetch",
        "metadata_writebacks": "engine.traffic.metadata_writeback",
        # blocks rewritten by re-encryption traffic
        "reencryption_blocks": "engine.traffic.reencrypt_block",
    }

    @property
    def extra_transactions(self) -> int:
        """Metadata DRAM transactions beyond the demand accesses."""
        return (
            self.counter_fetches
            + self.tree_fetches
            + self.mac_fetches
            + self.metadata_writebacks
        )


class EncryptionTimingBackend:
    """Memory backend with authenticated-encryption metadata traffic."""

    def __init__(
        self,
        config: EngineConfig,
        dram: DramSystem | None = None,
        registry: MetricRegistry | None = None,
        tracer: EventTracer | None = None,
    ) -> None:
        registry = registry if registry is not None else get_registry()
        self.registry = registry
        self.config = config
        self.dram = dram or DramSystem(registry=registry)
        with use_registry(registry):
            self.scheme = config.build_scheme()
        self.layout = config.build_layout()
        self.metadata_cache = Cache(
            config.metadata_cache, "metadata", registry=registry
        )
        self.stats = TimingStats(
            registry=registry, labels={"inst": registry.instance("timing")}
        )
        self._tracer = tracer if tracer is not None else get_tracer()
        self._probe_read = ProbePoint("timing.read", registry=registry)
        self._probe_write = ProbePoint("timing.write", registry=registry)
        self._decode_cycles = config.effective_decode_cycles
        self._crypto_cycles = config.crypto_cycles

    # -- internals ----------------------------------------------------------

    def _writeback(self, cycle: int, victim_address: int) -> None:
        self.stats.metadata_writebacks += 1
        self.dram.access(int(cycle), victim_address, is_write=True)

    def _metadata_read(self, cycle: int, address: int, kind: str) -> float:
        """One metadata block through the cache; DRAM on miss."""
        result = self.metadata_cache.access(address, AccessType.READ)
        if result.writeback_address is not None:
            self._writeback(cycle, result.writeback_address)
        if result.hit:
            return _META_CACHE_HIT_CYCLES
        if kind == "counter":
            self.stats.counter_fetches += 1
        elif kind == "tree":
            self.stats.tree_fetches += 1
        else:
            self.stats.mac_fetches += 1
        return self.dram.access(int(cycle), address, is_write=False)

    def _counter_chain(self, cycle: int, address: int) -> float:
        """Fetch + verify the counter of a data block.

        The counter block and any uncached tree ancestors are independent
        DRAM reads issued concurrently; verification is pipelined behind
        them, so the chain cost is the max of the fetches plus a small
        check tail per level actually fetched.
        """
        counter_address = self.layout.counter_block_address(address)
        result = self.metadata_cache.access(counter_address, AccessType.READ)
        if result.writeback_address is not None:
            self._writeback(cycle, result.writeback_address)
        if result.hit:
            return _META_CACHE_HIT_CYCLES
        self.stats.counter_fetches += 1
        latency = self.dram.access(int(cycle), counter_address, is_write=False)
        speculative = self.config.speculative_verification
        levels_fetched = 1
        for node_address in self.layout.tree_path_addresses(address):
            node_result = self.metadata_cache.access(
                node_address, AccessType.READ
            )
            if node_result.writeback_address is not None:
                self._writeback(cycle, node_result.writeback_address)
            if node_result.hit:
                break  # cached ancestor == already verified, walk ends
            self.stats.tree_fetches += 1
            node_latency = self.dram.access(
                int(cycle), node_address, is_write=False
            )
            if not speculative:
                latency = max(latency, node_latency)
            levels_fetched += 1
        if speculative:
            # Background verification: only the counter fetch + its own
            # check gate the read; the walk consumes bandwidth only.
            return latency + self.config.mac_check_cycles
        # Strict engine: one MAC-check-class verification per level.
        return latency + levels_fetched * self.config.mac_check_cycles

    # -- backend interface -------------------------------------------------------

    def read_block(self, cycle: int, address: int) -> float:
        """Latency of an authenticated read reaching DRAM.

        Dependency graph: the counter becomes usable after its fetch chain
        plus the delta decode; the AES keystream pipeline then runs,
        overlapping the data fetch; decryption is the XOR once both are
        ready; verification needs data + counter + (separate mode) the
        stored MAC, plus the GF-multiply check.
        """
        self.stats.demand_reads += 1
        with self._probe_read:
            data_ready = self.dram.access(int(cycle), address, is_write=False)
            counter_ready = (
                self._counter_chain(cycle, address) + self._decode_cycles
            )
            mac_ready = 0.0
            if not self.config.mac_in_ecc:
                mac_ready = self._metadata_read(
                    cycle, self.layout.mac_block_address(address), "mac"
                )
            keystream_ready = counter_ready + self._crypto_cycles
            plaintext_ready = max(data_ready, keystream_ready)
            verify_ready = (
                max(data_ready, counter_ready, mac_ready)
                + self.config.mac_check_cycles
            )
            latency = max(plaintext_ready, verify_ready)
        if self._tracer.enabled:
            self._tracer.complete(
                "mem.read",
                ts=float(cycle),
                dur=latency,
                cat="memory",
                tid="demand",
                clock="sim",
                address=address,
            )
        return latency

    def write_block(self, cycle: int, address: int) -> float:
        """Occupancy of a dirty-line eviction (posted write)."""
        self.stats.demand_writes += 1
        with self._probe_write:
            block = address // BLOCK_BYTES
            outcome = self.scheme.on_write(block)

            # Counter read-modify-write through the metadata cache.  A miss
            # fetches the counter block and kicks off its (background)
            # verification walk, same as the read path.
            counter_address = self.layout.counter_block_address(address)
            result = self.metadata_cache.access(
                counter_address, AccessType.WRITE
            )
            if result.writeback_address is not None:
                self._writeback(cycle, result.writeback_address)
            latency = float(_META_CACHE_HIT_CYCLES)
            if not result.hit:
                self.stats.counter_fetches += 1
                latency = self.dram.access(
                    int(cycle), counter_address, is_write=False
                )
                for node_address in self.layout.tree_path_addresses(address):
                    node_result = self.metadata_cache.access(
                        node_address, AccessType.READ
                    )
                    if node_result.writeback_address is not None:
                        self._writeback(cycle, node_result.writeback_address)
                    if node_result.hit:
                        break
                    self.stats.tree_fetches += 1
                    self.dram.access(int(cycle), node_address, is_write=False)

            # The data write itself (MAC rides along on MAC-in-ECC).
            latency = max(
                latency, self.dram.access(int(cycle), address, is_write=True)
            )
            if not self.config.mac_in_ecc:
                mac_address = self.layout.mac_block_address(address)
                mac_result = self.metadata_cache.access(
                    mac_address, AccessType.WRITE
                )
                if mac_result.writeback_address is not None:
                    self._writeback(cycle, mac_result.writeback_address)
                if not mac_result.hit:
                    self.stats.mac_fetches += 1
                    self.dram.access(int(cycle), mac_address, is_write=False)

            if (
                outcome.reencrypted_group is not None
                and self.config.model_reencryption_traffic
            ):
                self._issue_reencryption_traffic(
                    cycle, outcome.reencrypted_group
                )
        if self._tracer.enabled:
            self._tracer.complete(
                "mem.write",
                ts=float(cycle),
                dur=latency,
                cat="memory",
                tid="demand",
                clock="sim",
                address=address,
            )
        return latency

    def _issue_reencryption_traffic(self, cycle: int, group: int) -> None:
        """Stream the whole block-group through DRAM (read + write each)."""
        for block in self.scheme.blocks_in_group(group):
            block_address = block * BLOCK_BYTES
            self.dram.access(int(cycle), block_address, is_write=False)
            self.dram.access(int(cycle), block_address, is_write=True)
            self.stats.reencryption_blocks += 1


__all__ = ["EncryptionTimingBackend", "TimingStats"]
