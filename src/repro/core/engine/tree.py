"""Bonsai Merkle tree over counter metadata (paper Section 2.2).

Rogers et al.'s observation: with the counter mixed into every data MAC,
protecting the *counters* against tampering/replay transitively protects
the data -- so the integrity tree only needs to cover the (much smaller)
counter storage.  The paper layers its optimizations on this structure:
delta encoding shrinks the counter storage 6-7x, which removes one whole
tree level (5 -> 4 off-chip levels for the 512 MB region of Table 1).

Structure
---------
* Leaves are the 64-byte counter metadata blocks.
* Interior nodes hold ``arity`` (default 8) 64-bit child hashes, i.e. one
  64-byte node per 8 children.
* Levels shrink by 8x until a level fits the on-chip SRAM budget (3 KB in
  Table 1); that level is trusted and needs no further hashing.

Hashing is a keyed 64-bit hash, tweaked by (level, index) so identical
content at different tree positions hashes differently -- this is what
defeats block-relocation and replay splicing.  The hash is built from the
SplitMix64 mixer: not a cryptographic MAC, but the reproduction needs
*structural* fidelity (what is covered by what), and the test suite's
tamper/replay checks only require collision-resistance against the
specific manipulations modelled.

Off-chip node storage is exposed as a plain dict so tests and the fault
harness can corrupt arbitrary nodes and verify detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.prf import splitmix64

NODE_BYTES = 64
HASH_BYTES = 8
_MASK64 = (1 << 64) - 1


def node_hash(key: int, data: bytes, level: int, index: int) -> int:
    """Keyed, position-tweaked 64-bit hash of a 64-byte node/leaf."""
    acc = splitmix64(key ^ (level << 48) ^ index)
    for offset in range(0, len(data), 8):
        word = int.from_bytes(data[offset : offset + 8], "little")
        acc = splitmix64(acc ^ word)
    return acc & _MASK64


@dataclass(frozen=True)
class TreeGeometry:
    """Shape of the tree: per-level node counts, bottom (wide) to top.

    ``level_sizes[0]`` is the number of leaves; subsequent entries are
    interior levels; the last entry is the on-chip (trusted) level.
    ``offchip_levels`` counts the metadata levels that live in DRAM and
    can therefore cost extra memory transactions: the leaf/counter level
    plus every interior level except the on-chip top.  For Table 1's
    baseline this evaluates to 5; with delta-encoded counters, 4.
    """

    num_leaves: int
    arity: int
    onchip_bytes: int
    level_sizes: tuple[int, ...]

    @classmethod
    def for_leaves(
        cls, num_leaves: int, arity: int = 8, onchip_bytes: int = 3072
    ) -> TreeGeometry:
        if num_leaves <= 0:
            raise ValueError("num_leaves must be positive")
        if arity < 2:
            raise ValueError("arity must be at least 2")
        onchip_nodes = max(1, onchip_bytes // NODE_BYTES)
        sizes = [num_leaves]
        while sizes[-1] > onchip_nodes:
            sizes.append(-(-sizes[-1] // arity))
        return cls(num_leaves, arity, onchip_bytes, tuple(sizes))

    @property
    def interior_levels(self) -> int:
        """Number of hash levels above the leaves (including on-chip top)."""
        return len(self.level_sizes) - 1

    @property
    def offchip_levels(self) -> int:
        """Metadata levels stored in DRAM: leaves + off-chip interiors."""
        return len(self.level_sizes) - 1

    @property
    def offchip_node_count(self) -> int:
        """Interior nodes living in DRAM (excludes leaves and the top)."""
        return sum(self.level_sizes[1:-1])

    @property
    def offchip_bytes(self) -> int:
        return self.offchip_node_count * NODE_BYTES


class BonsaiMerkleTree:
    """Functional integrity tree with corruptible off-chip storage."""

    def __init__(
        self,
        num_leaves: int,
        key: int,
        arity: int = 8,
        onchip_bytes: int = 3072,
        initial_leaf: bytes = b"\x00" * NODE_BYTES,
    ) -> None:
        self.geometry = TreeGeometry.for_leaves(num_leaves, arity, onchip_bytes)
        self._key = key
        self._arity = arity
        #: off-chip node storage: (level, index) -> 64-byte node.  Level 1
        #: is the first interior level (level 0 is the leaves, which the
        #: engine stores itself).  Tests may corrupt entries directly.
        self.offchip: dict[tuple[int, int], bytes] = {}
        #: trusted on-chip top level: index -> 64-byte node (or a bare
        #: 64-bit leaf hash in the degenerate all-on-chip case).
        self.onchip: dict[int, Any] = {}
        self._build(initial_leaf)

    # -- construction -------------------------------------------------------
    #
    # Storage model: interior levels 1..top-1 live in self.offchip (DRAM,
    # corruptible); the top level's node *contents* live in self.onchip
    # (the 3 KB trusted SRAM of Table 1).  In the degenerate case where the
    # leaves themselves fit on-chip (tiny test trees), self.onchip maps
    # leaf index -> leaf hash instead.

    def _build(self, initial_leaf: bytes) -> None:
        sizes = self.geometry.level_sizes
        self._check_leaf(initial_leaf)
        self._top_level = len(sizes) - 1
        hashes = [
            node_hash(self._key, initial_leaf, 0, i)
            for i in range(sizes[0])
        ]
        if self._top_level == 0:
            self.onchip = dict(enumerate(hashes))
            return
        for level in range(1, len(sizes)):
            next_hashes: list[int] = []
            for j in range(sizes[level]):
                node = self._pack_node(hashes, j)
                if level == self._top_level:
                    self.onchip[j] = node
                else:
                    self.offchip[(level, j)] = node
                    next_hashes.append(node_hash(self._key, node, level, j))
            hashes = next_hashes

    def _pack_node(self, child_hashes: list[int], index: int) -> bytes:
        chunk = child_hashes[index * self._arity : (index + 1) * self._arity]
        data = bytearray()
        for value in chunk:
            data.extend(value.to_bytes(HASH_BYTES, "little"))
        data.extend(b"\x00" * (NODE_BYTES - len(data)))
        return bytes(data)

    # -- queries --------------------------------------------------------------

    def _child_hash_in_node(self, node: bytes, slot: int) -> int:
        return int.from_bytes(
            node[slot * HASH_BYTES : (slot + 1) * HASH_BYTES], "little"
        )

    def _set_child_hash(self, node: bytes, slot: int, value: int) -> bytes:
        mutable = bytearray(node)
        mutable[slot * HASH_BYTES : (slot + 1) * HASH_BYTES] = value.to_bytes(
            HASH_BYTES, "little"
        )
        return bytes(mutable)

    def verify_leaf(self, index: int, leaf: bytes) -> bool:
        """Walk leaf -> root, recomputing hashes from off-chip nodes.

        Returns False on any mismatch: a corrupted leaf, a corrupted
        interior node, or a consistent-but-stale (replayed) subtree.
        """
        sizes = self.geometry.level_sizes
        if not 0 <= index < sizes[0]:
            raise IndexError("leaf index out of range")
        self._check_leaf(leaf)
        current_hash = node_hash(self._key, leaf, 0, index)
        if self._top_level == 0:
            # Degenerate: leaf hashes are held on-chip directly.
            return self.onchip[index] == current_hash
        child_index = index
        for level in range(1, self._top_level + 1):
            parent_index = child_index // self._arity
            slot = child_index % self._arity
            if level == self._top_level:
                node = self.onchip[parent_index]  # trusted SRAM
            else:
                node = self.offchip[(level, parent_index)]
            if self._child_hash_in_node(node, slot) != current_hash:
                return False
            if level == self._top_level:
                return True
            current_hash = node_hash(self._key, node, level, parent_index)
            child_index = parent_index
        raise AssertionError("unreachable")

    def update_leaf(self, index: int, leaf: bytes) -> None:
        """Install new leaf content and rehash its path to the root."""
        sizes = self.geometry.level_sizes
        if not 0 <= index < sizes[0]:
            raise IndexError("leaf index out of range")
        self._check_leaf(leaf)
        current_hash = node_hash(self._key, leaf, 0, index)
        if self._top_level == 0:
            self.onchip[index] = current_hash
            return
        child_index = index
        for level in range(1, self._top_level + 1):
            parent_index = child_index // self._arity
            slot = child_index % self._arity
            if level == self._top_level:
                self.onchip[parent_index] = self._set_child_hash(
                    self.onchip[parent_index], slot, current_hash
                )
                return
            node = self._set_child_hash(
                self.offchip[(level, parent_index)], slot, current_hash
            )
            self.offchip[(level, parent_index)] = node
            current_hash = node_hash(self._key, node, level, parent_index)
            child_index = parent_index

    @staticmethod
    def _check_leaf(leaf: bytes) -> None:
        """Leaves are whole metadata blocks: any positive multiple of 8
        bytes (monolithic counters serialize a group to several blocks;
        the keyed hash consumes the full content either way)."""
        if not leaf or len(leaf) % 8:
            raise ValueError("leaves must be a positive multiple of 8 bytes")

    def root_digest(self) -> int:
        """Single 64-bit digest of the trusted on-chip level.

        Folds every on-chip node (or bare leaf hash, in the degenerate
        all-on-chip case) in index order through the keyed mixer.  Two
        trees over identical counter storage produce identical digests,
        so checkpoints and journal records can carry "the root" as one
        integer and recovery can verify a rebuilt tree against it.
        """
        acc = splitmix64(self._key ^ 0xB0A541)
        for index in sorted(self.onchip):
            node = self.onchip[index]
            if isinstance(node, bytes):
                value = node_hash(self._key, node, self._top_level, index)
            else:
                value = node  # degenerate case: bare 64-bit leaf hash
            acc = splitmix64(acc ^ value ^ (index << 1))
        return acc & _MASK64

    def path_nodes(self, index: int) -> list[tuple[int, int]]:
        """(level, node_index) pairs a verify of this leaf touches."""
        out: list[tuple[int, int]] = []
        child_index = index
        for level in range(1, self._top_level + 1):
            child_index //= self._arity
            out.append((level, child_index))
        return out


__all__ = ["BonsaiMerkleTree", "TreeGeometry", "node_hash", "NODE_BYTES"]
