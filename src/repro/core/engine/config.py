"""Engine configuration and the four Figure 8 presets.

===================  ==================  ===============
preset               counters            MAC placement
===================  ==================  ===============
``bmt_baseline``     monolithic 56-bit   separate blocks
``mac_in_ecc``       monolithic 56-bit   in ECC bits
``delta_only``       7-bit delta         separate blocks
``combined``         7-bit delta         in ECC bits
``combined_dual``    dual-length delta   in ECC bits
===================  ==================  ===============

Latency constants: the delta decode unit costs 2 cycles (the paper's own
45 nm synthesis result, Section 5.3); the AES-CTR keystream and the
GF-multiply MAC check are pipelined engines whose fixed latencies apply to
every encrypted configuration equally.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.counters import make_scheme
from repro.core.counters.base import CounterScheme
from repro.core.engine.layout import MetadataLayout
from repro.lint.contracts import BLOCK_BYTES
from repro.memsim.cache.cache import CacheConfig


class ConfigError(ValueError):
    """An engine/stack composition that cannot work as requested.

    Raised instead of a bare ``ValueError`` wherever the fix is a
    different composition, so the message can name the stack order (or
    option) that does work.
    """


@dataclass(frozen=True)
class EngineConfig:
    """Everything needed to build a functional or timing engine."""

    counter_scheme: str = "monolithic"
    scheme_kwargs: dict[str, Any] = field(default_factory=dict)
    mac_in_ecc: bool = False
    protected_bytes: int = 512 * 1024 * 1024
    blocks_per_group: int = 64
    metadata_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, ways=8)
    )
    tree_arity: int = 8
    onchip_tree_bytes: int = 3072
    #: keystream backend name from the :mod:`repro.fast.backends`
    #: registry ("reference" | "fast" | "aesni" | "splitmix"); the legacy
    #: spelling "aes" normalizes to "fast" (same construction and bytes)
    keystream_mode: str = "fast"
    #: extra read-path cycles for delta decode (paper: 2 at up to 4 GHz)
    decode_cycles: int = 2
    #: pipelined AES-CTR latency hiding the keystream behind the fetch
    crypto_cycles: int = 24
    #: one-cycle-class GF-multiply MAC check plus compare
    mac_check_cycles: int = 2
    #: model re-encryption DRAM traffic (the paper's simulations do not:
    #: "our simulation models do not include the separate re-encryption
    #: logic")
    model_reencryption_traffic: bool = False
    #: speculative integrity verification (standard for Bonsai-tree
    #: engines, incl. SGX): decryption proceeds as soon as the counter
    #: arrives, while the tree walk completes in the background -- tree
    #: node fetches cost DRAM bandwidth but stay off the read critical
    #: path.  Disable to model a strict verify-before-use engine.
    speculative_verification: bool = True

    def __post_init__(self) -> None:
        if self.protected_bytes <= 0 or self.protected_bytes % BLOCK_BYTES:
            raise ValueError("protected_bytes must be a multiple of 64")
        from repro.fast.backends import keystream_backends, resolve_backend

        try:
            backend = resolve_backend(self.keystream_mode)
        except ValueError:
            raise ValueError(
                f"keystream_mode must be one of "
                f"{'/'.join(keystream_backends())} "
                f"(got {self.keystream_mode!r})"
            ) from None
        error = backend.availability_error()
        if error is not None:
            raise ConfigError(
                f"keystream backend {backend.name!r} is unavailable: {error}"
            )
        # Normalize legacy aliases ("aes" -> "fast") so every consumer
        # downstream -- engine, kernels, bench payloads -- sees one
        # canonical name.
        if backend.name != self.keystream_mode:
            object.__setattr__(self, "keystream_mode", backend.name)

    # -- derived helpers ---------------------------------------------------

    @property
    def total_blocks(self) -> int:
        return self.protected_bytes // BLOCK_BYTES

    @property
    def counters_per_metadata_block(self) -> int:
        """How many counters share one 64-byte metadata block."""
        if self.counter_scheme == "monolithic":
            return 8  # SGX-style: 8 x 56-bit slots per block
        # split / delta / dual_length pack a whole group per block.
        return self.blocks_per_group

    @property
    def effective_decode_cycles(self) -> int:
        """Decode latency applies only to encoded counter schemes."""
        if self.counter_scheme in ("delta", "dual_length"):
            return self.decode_cycles
        return 0

    def build_scheme(self) -> CounterScheme:
        """Instantiate the configured counter scheme."""
        kwargs = dict(self.scheme_kwargs)
        if self.counter_scheme != "monolithic":
            kwargs.setdefault("blocks_per_group", self.blocks_per_group)
        return make_scheme(self.counter_scheme, self.total_blocks, **kwargs)

    def build_layout(self) -> MetadataLayout:
        """The metadata address map for this configuration."""
        return MetadataLayout(
            protected_bytes=self.protected_bytes,
            counters_per_block=self.counters_per_metadata_block,
            mac_separate=not self.mac_in_ecc,
            arity=self.tree_arity,
            onchip_tree_bytes=self.onchip_tree_bytes,
        )

    def with_overrides(self, **kwargs: Any) -> EngineConfig:
        """Copy with fields replaced (sweep/ablation helper)."""
        return replace(self, **kwargs)


def _preset(
    counter_scheme: str, mac_in_ecc: bool, **kwargs: Any
) -> EngineConfig:
    return EngineConfig(
        counter_scheme=counter_scheme, mac_in_ecc=mac_in_ecc, **kwargs
    )


PRESETS = {
    # The four systems Figure 8 compares (plus the dual-length variant).
    "bmt_baseline": _preset("monolithic", mac_in_ecc=False),
    "mac_in_ecc": _preset("monolithic", mac_in_ecc=True),
    "delta_only": _preset("delta", mac_in_ecc=False),
    "combined": _preset("delta", mac_in_ecc=True),
    "combined_dual": _preset("dual_length", mac_in_ecc=True),
    # Endurance stress: dual-length counters squeezed to 2+2 bits so the
    # overflow machinery (widen, re-encode, group re-encrypt) fires under
    # modest write volumes instead of lying dormant until ~2^7 writes.
    "endurance": _preset(
        "dual_length",
        mac_in_ecc=True,
        scheme_kwargs={"base_delta_bits": 2, "extension_bits": 2},
    ),
}


def preset(name: str, **overrides: Any) -> EngineConfig:
    """Fetch a named preset, optionally overriding fields."""
    try:
        config = PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
    return config.with_overrides(**overrides) if overrides else config


__all__ = ["ConfigError", "EngineConfig", "PRESETS", "preset"]
