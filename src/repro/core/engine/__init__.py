"""The memory-encryption engine.

Composes the counter schemes, the MAC-in-ECC machinery, the Bonsai Merkle
tree and the metadata cache into two top-level objects:

* :class:`~repro.core.engine.secure_memory.SecureMemory` -- the
  *functional* engine: real AES-CTR encryption, real MACs, real tree
  hashing, fault injection and tamper detection.  Used by the security
  tests, the fault-matrix experiments (Figure 3) and the examples.
* :class:`~repro.core.engine.timing.EncryptionTimingBackend` -- the
  *timing* engine: tracks counters, the 32 KB metadata cache and tree
  geometry, and turns every LLC miss into the right set of DRAM
  transactions.  Plugs into the trace-driven CPU model to produce the
  Figure 8 / Table 2 numbers.

Both are configured by :class:`~repro.core.engine.config.EngineConfig`,
whose presets name the four systems Figure 8 compares.
"""

from repro.core.engine.config import EngineConfig, PRESETS
from repro.core.engine.layout import MetadataLayout
from repro.core.engine.secure_memory import (
    IntegrityError,
    ReadResult,
    SecureMemory,
)
from repro.core.engine.timing import EncryptionTimingBackend
from repro.core.engine.tree import BonsaiMerkleTree
from repro.core.engine.units import (
    DecodeUnit,
    DeltaBlockFormat,
    IncrementResetUnit,
    ReencryptionEngine,
)

__all__ = [
    "DecodeUnit",
    "DeltaBlockFormat",
    "IncrementResetUnit",
    "ReencryptionEngine",
    "EngineConfig",
    "PRESETS",
    "MetadataLayout",
    "SecureMemory",
    "ReadResult",
    "IntegrityError",
    "EncryptionTimingBackend",
    "BonsaiMerkleTree",
]
