"""The Figure 7 hardware units, modelled explicitly.

The paper's implementation sketch (Section 4.4) introduces three pieces
of hardware around the counter storage:

* **Decode Unit** -- on a read, extract a delta from the fetched
  metadata block and add it to the reference ("a bit extraction and an
  add operation", 2 cycles at up to 4 GHz).
* **Increment and Reset Unit** -- on a write, increment the delta,
  checking for overflow first; after a successful increment, check
  whether all deltas became identical (the reset condition).
* **Re-encoding and Re-encryption Unit** -- overflowing block-groups are
  *enqueued to the overflow buffer* for background processing; the
  engine first attempts re-encoding and only then re-encrypts.

The counter schemes in :mod:`repro.core.counters` implement the same
logic in object form for simulation speed; this module provides the
hardware-shaped view: stateless units operating on *serialized* metadata
blocks, plus the overflow buffer / background engine structure, so the
datapath of Figure 7 can be exercised and tested piece by piece.  The
decode unit here is literally the bit-extract-and-add the paper
synthesized.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.core.counters.delta import DeltaCounters
from repro.lint.contracts import (
    DELTA_BITS,
    GROUP_BLOCKS,
    METADATA_BLOCK_BITS,
    REFERENCE_BITS,
)
from repro.util.bits import BitReader, BitWriter


@dataclass(frozen=True)
class DeltaBlockFormat:
    """Field geometry of one delta-encoded counter metadata block."""

    reference_bits: int = REFERENCE_BITS
    delta_bits: int = DELTA_BITS
    slots: int = GROUP_BLOCKS

    @property
    def total_bits(self) -> int:
        return self.reference_bits + self.delta_bits * self.slots

    def __post_init__(self) -> None:
        if self.total_bits > METADATA_BLOCK_BITS:
            raise ValueError(
                f"{self.total_bits} bits exceed one 64-byte metadata block"
            )


class DecodeUnit:
    """Figure 7's decode unit: bit-extract one delta, add the reference.

    ``latency_cycles`` is the paper's synthesis result (2 cycles); the
    unit itself is pure combinational logic over the raw block.
    """

    def __init__(self, fmt: DeltaBlockFormat | None = None,
                 latency_cycles: int = 2) -> None:
        self.fmt = fmt or DeltaBlockFormat()
        self.latency_cycles = latency_cycles

    def decode(self, metadata_block: bytes, slot: int) -> int:
        """Counter for one slot: reference + delta[slot]."""
        fmt = self.fmt
        if not 0 <= slot < fmt.slots:
            raise IndexError(f"slot {slot} out of range")
        word = int.from_bytes(metadata_block, "little")
        reference = word & ((1 << fmt.reference_bits) - 1)
        offset = fmt.reference_bits + slot * fmt.delta_bits
        delta = (word >> offset) & ((1 << fmt.delta_bits) - 1)
        return reference + delta

    def decode_all(self, metadata_block: bytes) -> list[int]:
        """All counters of the block (verification/scrub path)."""
        return [
            self.decode(metadata_block, slot)
            for slot in range(self.fmt.slots)
        ]


@dataclass(frozen=True)
class IncrementResult:
    """Outcome of the increment-and-reset unit."""

    metadata_block: bytes
    counter: int  # new counter of the written slot
    overflowed: bool  # delta could not be incremented in place
    reset: bool  # all deltas converged and were folded


class IncrementResetUnit:
    """Figure 7's increment/reset unit, operating on raw blocks.

    On overflow the unit does *not* modify the block -- it reports the
    condition so the controller can enqueue the group for the
    re-encoding/re-encryption engine, matching the hardware split.
    """

    def __init__(self, fmt: DeltaBlockFormat | None = None) -> None:
        self.fmt = fmt or DeltaBlockFormat()

    def _unpack(self, metadata_block: bytes) -> tuple[int, list[int]]:
        reader = BitReader(metadata_block)
        reference = reader.read(self.fmt.reference_bits)
        deltas = [
            reader.read(self.fmt.delta_bits) for _ in range(self.fmt.slots)
        ]
        return reference, deltas

    def _pack(self, reference: int, deltas: list[int]) -> bytes:
        writer = BitWriter()
        writer.write(reference, self.fmt.reference_bits)
        for delta in deltas:
            writer.write(delta, self.fmt.delta_bits)
        return writer.to_bytes(64)

    def increment(self, metadata_block: bytes, slot: int) -> IncrementResult:
        """Bump one delta; detect overflow first, reset after."""
        if not 0 <= slot < self.fmt.slots:
            raise IndexError(f"slot {slot} out of range")
        reference, deltas = self._unpack(metadata_block)
        limit = 1 << self.fmt.delta_bits
        if deltas[slot] + 1 >= limit:
            return IncrementResult(
                metadata_block=metadata_block,
                counter=reference + deltas[slot],
                overflowed=True,
                reset=False,
            )
        deltas[slot] += 1
        counter = reference + deltas[slot]
        reset = deltas[slot] != 0 and all(
            d == deltas[slot] for d in deltas
        )
        if reset:
            reference += deltas[slot]
            deltas = [0] * self.fmt.slots
        return IncrementResult(
            metadata_block=self._pack(reference, deltas),
            counter=counter,
            overflowed=False,
            reset=reset,
        )


@dataclass(frozen=True)
class OverflowRequest:
    """One entry of the overflow buffer: a group awaiting processing."""

    group_address: int
    metadata_block: bytes
    overflowing_slot: int


@dataclass(frozen=True)
class OverflowResolution:
    """What the background engine did with an overflow request."""

    group_address: int
    metadata_block: bytes
    reencoded: bool
    reencrypted: bool
    group_counter: int | None  # fresh counter when re-encrypted


class ReencryptionEngine:
    """Figure 7's re-encoding & re-encryption unit with overflow buffer.

    Requests are enqueued by the write path and drained in the
    background ("re-encryption can be performed without completely
    suspending the rest of the system", Section 5.2).  For each request
    the engine first attempts re-encoding (subtract delta_min); if
    delta_min is zero, the group is re-encrypted under its largest
    counter.
    """

    def __init__(self, fmt: DeltaBlockFormat | None = None,
                 buffer_capacity: int = 16) -> None:
        if buffer_capacity <= 0:
            raise ValueError("buffer_capacity must be positive")
        self.fmt = fmt or DeltaBlockFormat()
        self._unit = IncrementResetUnit(self.fmt)
        self._buffer: deque[OverflowRequest] = deque()
        self.buffer_capacity = buffer_capacity
        self.stats_reencodes = 0
        self.stats_reencryptions = 0
        self.stats_stalls = 0  # enqueue attempts that found a full buffer

    def enqueue(self, request: OverflowRequest) -> bool:
        """Add a request; returns False (a write-path stall) when full."""
        if len(self._buffer) >= self.buffer_capacity:
            self.stats_stalls += 1
            return False
        self._buffer.append(request)
        return True

    @property
    def pending(self) -> int:
        return len(self._buffer)

    def process_one(self) -> OverflowResolution | None:
        """Drain one request (one background 'turn')."""
        if not self._buffer:
            return None
        request = self._buffer.popleft()
        reference, deltas = self._unit._unpack(request.metadata_block)
        delta_min = min(deltas)
        if delta_min > 0:
            # Re-encode: shift delta_min into the reference (Figure 5c).
            reference += delta_min
            deltas = [d - delta_min for d in deltas]
            self.stats_reencodes += 1
            return OverflowResolution(
                group_address=request.group_address,
                metadata_block=self._unit._pack(reference, deltas),
                reencoded=True,
                reencrypted=False,
                group_counter=None,
            )
        # Re-encrypt under the largest counter (Figure 5a): the
        # overflowing slot's next value, which is reference + 2^bits.
        group_counter = reference + (1 << self.fmt.delta_bits)
        self.stats_reencryptions += 1
        return OverflowResolution(
            group_address=request.group_address,
            metadata_block=self._unit._pack(
                group_counter, [0] * self.fmt.slots
            ),
            reencoded=False,
            reencrypted=True,
            group_counter=group_counter,
        )

    def drain(self) -> list[OverflowResolution]:
        """Process everything pending."""
        out: list[OverflowResolution] = []
        while self._buffer:
            resolution = self.process_one()
            assert resolution is not None  # buffer was non-empty
            out.append(resolution)
        return out


def crosscheck_against_scheme(
    writes: Iterable[int], fmt: DeltaBlockFormat | None = None
) -> tuple[list[int], list[int]]:
    """Drive the three units with a write sequence and cross-check the
    final counters against :class:`DeltaCounters` (the simulation-speed
    implementation).  Returns (unit_counters, scheme_counters).

    Used by the test suite to prove the hardware-shaped datapath and the
    object model implement the same architecture.  The unit datapath
    processes overflows *synchronously* here (enqueue -> drain -> retry),
    matching the scheme's semantics; the asynchronous-buffer behaviour is
    tested separately.
    """
    fmt = fmt or DeltaBlockFormat()
    decode = DecodeUnit(fmt)
    increment = IncrementResetUnit(fmt)
    engine = ReencryptionEngine(fmt)
    block = IncrementResetUnit(fmt)._pack(0, [0] * fmt.slots)

    scheme = DeltaCounters(
        fmt.slots,
        blocks_per_group=fmt.slots,
        delta_bits=fmt.delta_bits,
        reference_bits=fmt.reference_bits,
        enable_reset=True,
        enable_reencode=True,
    )
    for slot in writes:
        result = increment.increment(block, slot)
        if result.overflowed:
            engine.enqueue(
                OverflowRequest(
                    group_address=0,
                    metadata_block=block,
                    overflowing_slot=slot,
                )
            )
            resolution = engine.process_one()
            assert resolution is not None  # just enqueued
            block = resolution.metadata_block
            if not resolution.reencrypted:
                # Re-encode freed headroom: retry the pending increment.
                retry = increment.increment(block, slot)
                assert not retry.overflowed
                block = retry.metadata_block
            # On re-encryption the pending write is absorbed into the
            # group-wide fresh counter (every delta is 0, the written
            # block is encrypted under group_counter like its peers).
        else:
            block = result.metadata_block
        scheme.on_write(slot)

    unit_counters = decode.decode_all(block)
    scheme_counters = [scheme.counter(b) for b in range(fmt.slots)]
    return unit_counters, scheme_counters


__all__ = [
    "DeltaBlockFormat",
    "DecodeUnit",
    "IncrementResetUnit",
    "IncrementResult",
    "OverflowRequest",
    "OverflowResolution",
    "ReencryptionEngine",
    "crosscheck_against_scheme",
]
