"""Physical layout of encryption metadata in DRAM.

The protected data region occupies ``[0, protected_bytes)``.  Above it the
engine reserves, in order: counter storage, (for the separate-MAC
configuration) MAC storage, then the off-chip interior levels of the
Bonsai Merkle tree.  The address map matters because metadata competes
with data for the same banks/channels and because the metadata cache is
indexed by these physical addresses.

The layout also yields the storage-overhead arithmetic behind Figure 1 and
the tree-depth reduction (5 -> 4 off-chip levels) reported in Section 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine.tree import NODE_BYTES, TreeGeometry
from repro.lint.contracts import BLOCK_BYTES, ECC_FIELD_BYTES as _MAC_BYTES

# _MAC_BYTES: 56-bit MAC padded to a byte-addressable 8-byte slot


@dataclass(frozen=True)
class MetadataLayout:
    """Address map for one protected region.

    ``counters_per_block`` is how many per-block counters one 64-byte
    metadata block holds: 8 for SGX-style monolithic 56-bit counters
    (power-of-two slots, as SGX lays them out), 64 for the split/delta
    family (one group per block).
    """

    protected_bytes: int
    counters_per_block: int
    mac_separate: bool
    arity: int = 8
    onchip_tree_bytes: int = 3072

    def __post_init__(self) -> None:
        if self.protected_bytes <= 0 or self.protected_bytes % BLOCK_BYTES:
            raise ValueError(
                "protected_bytes must be a positive multiple of 64"
            )
        if self.counters_per_block <= 0:
            raise ValueError("counters_per_block must be positive")

    # -- sizes ---------------------------------------------------------------

    @property
    def data_blocks(self) -> int:
        return self.protected_bytes // BLOCK_BYTES

    @property
    def counter_blocks(self) -> int:
        return -(-self.data_blocks // self.counters_per_block)

    @property
    def mac_blocks(self) -> int:
        if not self.mac_separate:
            return 0
        macs_per_block = BLOCK_BYTES // _MAC_BYTES
        return -(-self.data_blocks // macs_per_block)

    @property
    def tree(self) -> TreeGeometry:
        """Tree over the counter blocks (Bonsai: counters only)."""
        return TreeGeometry.for_leaves(
            self.counter_blocks, self.arity, self.onchip_tree_bytes
        )

    @property
    def tree_blocks(self) -> int:
        """Off-chip interior tree nodes, in 64-byte blocks."""
        return self.tree.offchip_node_count

    @property
    def metadata_blocks(self) -> int:
        return self.counter_blocks + self.mac_blocks + self.tree_blocks

    @property
    def storage_overhead(self) -> float:
        """All off-chip metadata as a fraction of protected capacity."""
        return self.metadata_blocks / self.data_blocks

    @property
    def offchip_tree_levels(self) -> int:
        """The paper's 'N-level off-chip integrity tree' figure: counter
        level + interior levels below the on-chip top."""
        return self.tree.offchip_levels

    # -- addresses -------------------------------------------------------------

    @property
    def counter_base(self) -> int:
        return self.protected_bytes

    @property
    def mac_base(self) -> int:
        return self.counter_base + self.counter_blocks * BLOCK_BYTES

    @property
    def tree_base(self) -> int:
        return self.mac_base + self.mac_blocks * BLOCK_BYTES

    def counter_block_address(self, data_address: int) -> int:
        """Metadata block holding the counter of a data address."""
        self._check_data_address(data_address)
        block = data_address // BLOCK_BYTES
        return self.counter_base + (block // self.counters_per_block) * BLOCK_BYTES

    def mac_block_address(self, data_address: int) -> int:
        """Metadata block holding the separate MAC of a data address."""
        if not self.mac_separate:
            raise ValueError("layout has no separate MAC region")
        self._check_data_address(data_address)
        block = data_address // BLOCK_BYTES
        macs_per_block = BLOCK_BYTES // _MAC_BYTES
        return self.mac_base + (block // macs_per_block) * BLOCK_BYTES

    def tree_node_address(self, level: int, index: int) -> int:
        """Physical address of an off-chip interior tree node.

        ``level`` 1 is the level directly above the counter blocks; the
        on-chip top level has no DRAM address.
        """
        sizes = self.tree.level_sizes
        if not 1 <= level < len(sizes) - 1:
            raise ValueError(
                f"level {level} is not an off-chip interior level"
            )
        if not 0 <= index < sizes[level]:
            raise IndexError("tree node index out of range")
        base = self.tree_base
        for lower in range(1, level):
            base += sizes[lower] * NODE_BYTES
        return base + index * NODE_BYTES

    def tree_path_addresses(self, data_address: int) -> list[int]:
        """DRAM addresses of the tree nodes a counter verify walks,
        bottom-up, excluding the counter block itself and the on-chip
        top."""
        self._check_data_address(data_address)
        block = data_address // BLOCK_BYTES
        leaf = block // self.counters_per_block
        sizes = self.tree.level_sizes
        out: list[int] = []
        index = leaf
        for level in range(1, len(sizes) - 1):
            index //= self.arity
            out.append(self.tree_node_address(level, index))
        return out

    @property
    def total_bytes(self) -> int:
        """End of the metadata region (for DRAM capacity checks)."""
        sizes = self.tree.level_sizes
        interior = sum(sizes[1:-1]) * NODE_BYTES if len(sizes) > 1 else 0
        return self.tree_base + interior

    def _check_data_address(self, address: int) -> None:
        if not 0 <= address < self.protected_bytes:
            raise ValueError(
                f"address {address:#x} outside the protected region"
            )


__all__ = ["MetadataLayout", "BLOCK_BYTES"]
