"""Functional authenticated-encrypted memory.

This is the full data path of the paper's system, bit-for-bit:

* AES counter-mode encryption per 64-byte block, nonce = (counter,
  physical address),
* per-block 56-bit Carter-Wegman MACs bound to the counter (Bonsai
  requirement), stored either in a separate metadata region (baseline) or
  inside the ECC bits with 7-bit Hamming + 1 parity (the paper's scheme),
* counters held in one of the four interchangeable representations,
  *read back from their serialized storage* (never from trusted in-object
  state) so counter tampering corrupts decryption exactly as in hardware,
* a Bonsai Merkle tree over the counter storage; leaf verification on
  every read, leaf update on every write,
* fault injection (bit flips in data or ECC bits) and attacker operations
  (rollback/replay, arbitrary overwrites, tree-node corruption) for the
  security and Figure 3 experiments,
* flip-and-check error correction on MAC-in-ECC configurations.

The class keeps everything addressable by *byte address* of the block
(block-aligned), mirroring how the engine sits on the memory controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.core.counters.events import CounterEvent
from repro.core.ecc_mac.correction import (
    CorrectionMethod,
    CorrectionResult,
    FlipAndCheckCorrector,
)
from repro.core.ecc_mac.detection import CheckOutcome, check_block
from repro.core.ecc_mac.layout import EccField, MacEccCodec
from repro.core.engine.config import EngineConfig
from repro.core.engine.tree import BonsaiMerkleTree
from repro.crypto.ctr import CtrModeCipher
from repro.crypto.mac import CarterWegmanMac
from repro.obs.metrics import (
    MetricRegistry,
    RegistryView,
    get_registry,
    use_registry,
)
from repro.obs.probe import ProbePoint
from repro.obs.trace import get_tracer
from repro.persist.config import DurabilityConfig
from repro.persist.journal import DataImage
from repro.persist.manager import PersistenceManager, SnapshotState

# One cache line per ciphertext block -- a layout contract, shared with
# the RL001 checker via the contract table.
from repro.lint.contracts import BLOCK_BYTES


class IntegrityError(Exception):
    """Raised when a read cannot be authenticated.

    ``kind`` distinguishes what tripped:

    * ``"tree"`` -- counter-storage verification failed (tamper/replay of
      counters or tree nodes),
    * ``"mac"`` -- the data MAC failed and no small error explains it
      (data tamper, or an uncorrectable fault),
    * ``"mac_bits"`` -- the stored MAC itself had an uncorrectable
      multi-bit fault.

    ``outcome`` carries the :class:`CheckOutcome` that tripped (``None``
    for tree failures, which happen before the block check), and
    ``correction`` the full flip-and-check statistics when correction was
    attempted -- so recovery policies and tests can tell *why* a read
    failed without re-deriving it.
    """

    def __init__(
        self,
        kind: str,
        address: int,
        message: str,
        *,
        outcome: CheckOutcome | None = None,
        correction: CorrectionResult | None = None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.address = address
        self.outcome = outcome
        #: CorrectionResult when flip-and-check ran (and failed), else None
        self.correction = correction


@dataclass(frozen=True)
class ReadResult:
    """A successful authenticated read."""

    data: bytes
    outcome: CheckOutcome
    corrected_bits: tuple[int, ...] = ()  # data bits fixed by flip-and-check
    correction_checks: int = 0

    @property
    def clean(self) -> bool:
        return self.outcome is CheckOutcome.CLEAN and not self.corrected_bits


class EngineCounters(RegistryView):
    """Operation counters for reporting.

    Since the observability subsystem this is a thin view over shared
    registry counters (``engine.read.total`` etc.): same attribute
    names as the old dataclass, but the storage is the unified metrics
    plane, so ``memory.counters.corrections`` and
    ``registry.total("engine.read.correction")`` agree by construction.
    """

    _VIEW_FIELDS = {
        "reads": "engine.read.total",
        "writes": "engine.write.total",
        "group_reencryptions": "engine.write.group_reencrypt",
        "corrections": "engine.read.correction",
        "mac_self_corrections": "engine.read.mac_self_correction",
    }


class SecureMemory:
    """Authenticated, encrypted, optionally error-correcting memory."""

    def __init__(
        self,
        config: EngineConfig,
        key: bytes,
        correction_method: CorrectionMethod = CorrectionMethod.ACCELERATED,
        registry: MetricRegistry | None = None,
        durability: DurabilityConfig | None = None,
    ) -> None:
        if len(key) < 48:
            raise ValueError(
                "key material must be at least 48 bytes "
                "(16 data-encryption + 24 MAC + 8 tree)"
            )
        registry = registry if registry is not None else get_registry()
        self.registry = registry
        self.config = config
        # Built under this registry so the scheme's ``counters.*`` stats
        # land in the same plane as the engine's own metrics.
        with use_registry(registry):
            self.scheme = config.build_scheme()
        mode = config.keystream_mode
        self._cipher = CtrModeCipher(key[:16], mode=mode)
        # The MAC's nonce mask follows the keystream backend's family:
        # AES-family backends mask with AES (accelerated through the same
        # backend's block encryptor), the splitmix backend masks with the
        # simulation PRF.
        backend = self._cipher.backend
        if backend.family == "aes":
            self._mac = CarterWegmanMac(
                key[16:40],
                mode="aes",
                mask_encryptor=backend.build_encryptor(key[24:40]),
            )
        else:
            self._mac = CarterWegmanMac(key[16:40], mode="fast")
        self._codec = MacEccCodec(self._mac)
        self._corrector = FlipAndCheckCorrector(self._mac)
        self._correction_method = correction_method
        tree_key = int.from_bytes(key[40:48], "little")
        #: counter storage as the attacker sees it: group -> serialized bytes
        self.counter_storage: dict[int, bytes] = {}
        self._initial_metadata = self.scheme.group_metadata(0)
        self.tree = BonsaiMerkleTree(
            num_leaves=self.scheme.num_groups,
            key=tree_key,
            arity=config.tree_arity,
            onchip_bytes=config.onchip_tree_bytes,
            initial_leaf=self._pad_leaf(self._initial_metadata),
        )
        #: off-chip data: block index -> ciphertext bytes
        self.ciphertexts: dict[int, bytes] = {}
        #: off-chip MAC state: block index -> EccField (mac_in_ecc) or
        #: block index -> int tag (separate-MAC baseline)
        self.ecc_fields: dict[int, EccField] = {}
        self.mac_store: dict[int, int] = {}
        # Observability: all counters live in the (run- or process-wide)
        # metrics registry; lookups are resolved once, here, so the
        # read/write hot paths touch only pre-bound objects.
        inst = registry.instance("engine")
        self.counters = EngineCounters(registry=registry, labels={"inst": inst})
        self._m_mac_checks = registry.counter("engine.read.mac_check", inst=inst)
        self._m_tree_fails = registry.counter("engine.read.tree_fail", inst=inst)
        self._m_mac_fails = registry.counter("engine.read.mac_fail", inst=inst)
        self._probe_read = ProbePoint("engine.read", registry=registry)
        self._probe_write = ProbePoint("engine.write", registry=registry)
        self._probe_reencrypt = ProbePoint("engine.reencrypt", registry=registry)
        #: optional in-flight fault hook for resilience harnesses: called
        #: on every read with ``(address, ciphertext, ecc_field)`` and
        #: returns the (possibly perturbed) pair the controller *receives*
        #: -- storage itself is untouched, so a re-read goes through the
        #: hook again (transient faults clear, stuck-at faults re-assert).
        self.read_perturb: (
            Callable[
                [int, bytes, EccField | None],
                tuple[bytes, EccField | None],
            ]
            | None
        ) = None
        #: write-ahead persistence (None = volatile engine, the default)
        self.persist: PersistenceManager | None = None
        #: optional resilience-plane state provider folded into durable
        #: snapshots (installed by ResilientMemory when durability is on)
        self.resilience_state: Callable[[], dict[str, Any]] | None = None
        if durability is not None and durability.enabled:
            self.attach_persistence(
                PersistenceManager(durability, registry=registry)
            )

    # -- durability ----------------------------------------------------------

    def attach_persistence(
        self, manager: PersistenceManager, bootstrap: bool = True
    ) -> None:
        """Wire a persistence manager to this engine.

        Binds the durable-state snapshot provider and (unless resuming on
        a recovered store) seals the epoch-0 checkpoint so recovery always
        has a redo base.
        """
        manager.bind(self._durable_snapshot)
        self.persist = manager
        if bootstrap:
            manager.bootstrap()

    def _durable_snapshot(self) -> SnapshotState:
        """Everything a checkpoint must capture to rebuild this engine."""
        data: dict[int, DataImage] = {}
        for block, ciphertext in self.ciphertexts.items():
            ecc = self.ecc_fields.get(block)
            data[block] = DataImage(
                ciphertext=ciphertext,
                ecc=ecc.pack() if ecc is not None else None,
                mac=self.mac_store.get(block),
            )
        return {
            "data": data,
            "meta": dict(self.counter_storage),
            "root": self.tree.root_digest(),
            "scheme_epoch": getattr(self.scheme, "epoch", 0),
            "resilience": (
                self.resilience_state()
                if self.resilience_state is not None
                else {}
            ),
        }

    def restore_block_image(self, block: int, image: DataImage) -> None:
        """Recovery redo: reinstall one durable data-block image."""
        self.ciphertexts[block] = image.ciphertext
        if image.ecc is not None:
            self.ecc_fields[block] = EccField.unpack(image.ecc)
        if image.mac is not None:
            self.mac_store[block] = image.mac

    def restore_group_metadata(self, group: int, metadata: bytes) -> None:
        """Recovery redo: reinstall one group's serialized counters.

        Feeds the scheme (so in-object state matches storage), the
        counter storage, and the tree leaf -- after replaying every
        group the rebuilt root must equal the journaled digest.
        """
        self.scheme.restore_group_metadata(group, metadata)
        self.counter_storage[group] = metadata
        self.tree.update_leaf(group, self._pad_leaf(metadata))

    def restore_scheme_epoch(self, scheme_epoch: int) -> None:
        """Recovery redo: reinstall the global re-encryption epoch."""
        if hasattr(self.scheme, "epoch"):
            self.scheme.epoch = scheme_epoch

    # -- helpers -------------------------------------------------------------

    @property
    def codec(self) -> MacEccCodec:
        """The MAC/ECC codec (for scrubbers and fault harnesses)."""
        return self._codec

    @property
    def cipher(self) -> CtrModeCipher:
        """The block cipher (for the batch-kernel façade)."""
        return self._cipher

    @property
    def mac(self) -> CarterWegmanMac:
        """The MAC (for the batch-kernel façade)."""
        return self._mac

    @property
    def corrector(self) -> FlipAndCheckCorrector:
        """The flip-and-check corrector (for the batch-kernel façade)."""
        return self._corrector

    @staticmethod
    def _pad_leaf(metadata: bytes) -> bytes:
        """Tree leaves hash whole group metadata (any multiple of 64B)."""
        return metadata

    def _block_index(self, address: int) -> int:
        if address % BLOCK_BYTES:
            raise ValueError("addresses must be 64-byte aligned")
        block = address // BLOCK_BYTES
        if not 0 <= block < self.scheme.total_blocks:
            raise ValueError(f"address {address:#x} outside protected region")
        return block

    def _stored_metadata(self, group: int) -> bytes:
        return self.counter_storage.get(group, self._initial_metadata)

    def _nonce(self, counter: int, epoch: int | None = None) -> int:
        """Epoch-qualified encryption counter.

        Monolithic counters can (with test-sized widths) wrap, which the
        scheme reports as a global re-encryption and a new *epoch*.  A
        real system re-keys; we model the key change by folding the
        epoch into the nonce's high bits, which keeps every (address,
        nonce) pair unique across epochs.
        """
        if epoch is None:
            epoch = getattr(self.scheme, "epoch", 0)
        return counter + (epoch << 57)

    def _stored_ciphertext(self, block: int) -> bytes:
        if block in self.ciphertexts:
            return self.ciphertexts[block]
        # Untouched blocks hold the encryption of all-zeros under the
        # current epoch's counter 0.
        zero = b"\x00" * BLOCK_BYTES
        address = block * BLOCK_BYTES
        ciphertext = self._cipher.encrypt(zero, self._nonce(0), address)
        self._store_block(block, ciphertext, self._nonce(0))
        return ciphertext

    def _store_block(self, block: int, ciphertext: bytes, nonce: int) -> None:
        address = block * BLOCK_BYTES
        self.ciphertexts[block] = ciphertext
        if self.config.mac_in_ecc:
            self.ecc_fields[block] = self._codec.build(
                ciphertext, address, nonce
            )
            if self.persist is not None and self.persist.in_txn:
                self.persist.record_data(
                    block,
                    DataImage(
                        ciphertext=ciphertext,
                        ecc=self.ecc_fields[block].pack(),
                    ),
                )
        else:
            self.mac_store[block] = self._mac.tag(ciphertext, address, nonce)
            if self.persist is not None and self.persist.in_txn:
                self.persist.record_data(
                    block,
                    DataImage(
                        ciphertext=ciphertext, mac=self.mac_store[block]
                    ),
                )

    def _commit_metadata(self, group: int) -> None:
        metadata = self.scheme.group_metadata(group)
        self.counter_storage[group] = metadata
        self.tree.update_leaf(group, self._pad_leaf(metadata))
        if self.persist is not None and self.persist.in_txn:
            self.persist.record_meta(group, metadata)

    # -- public API -------------------------------------------------------------

    def write(self, address: int, data: bytes) -> None:
        """Encrypt and store one 64-byte block.

        With persistence attached, the whole write -- including any
        overflow-triggered group or global re-encryption -- is one
        journal transaction: every stored block image and every touched
        group's metadata land in a single sealed record, so recovery
        replays it atomically or not at all.
        """
        if len(data) != BLOCK_BYTES:
            raise ValueError(f"data must be {BLOCK_BYTES} bytes")
        if self.persist is not None:
            self.persist.begin_txn()
        try:
            global_reencrypt = self._write_inner(address, data)
        except BaseException:
            if self.persist is not None:
                self.persist.abort_txn()
            raise
        if self.persist is not None:
            force = (
                global_reencrypt
                and self.persist.config.checkpoint_on_global_reencrypt
            )
            self.persist.commit_txn(
                root=self.tree.root_digest(),
                scheme_epoch=getattr(self.scheme, "epoch", 0),
                force_checkpoint=force,
            )

    def _write_inner(self, address: int, data: bytes) -> bool:
        """The write data path; returns True on a global re-encryption."""
        global_reencrypt = False
        with self._probe_write:
            block = self._block_index(address)
            outcome = self.scheme.on_write(block)
            self.counters.writes += 1
            if outcome.has(CounterEvent.GLOBAL_RE_ENCRYPT):
                global_reencrypt = True
                self._trace_reencrypt("engine.global_reencrypt", address)
                with self._probe_reencrypt:
                    self._global_reencrypt(skip_block=block)
            elif outcome.reencrypted_group is not None:
                self._trace_reencrypt(
                    "engine.group_reencrypt",
                    address,
                    group=outcome.reencrypted_group,
                )
                with self._probe_reencrypt:
                    self._reencrypt_group(
                        outcome.reencrypted_group,
                        outcome.group_counter,
                        skip_block=block,
                    )
                self.counters.group_reencryptions += 1
            nonce = self._nonce(outcome.counter)
            ciphertext = self._cipher.encrypt(data, nonce, address)
            self._store_block(block, ciphertext, nonce)
            self._commit_metadata(self.scheme.group_of(block))
        return global_reencrypt

    @staticmethod
    def _trace_reencrypt(name: str, address: int, **args: Any) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(name, cat="engine", address=address, **args)

    def _reencrypt_group(
        self, group: int, group_counter: int, skip_block: int
    ) -> None:
        """Decrypt every block of the group under its old counter and
        re-encrypt under the shared fresh counter (Figure 5a).

        Each block's MAC is verified against its old counter *before*
        re-encryption: otherwise an overflow-triggered re-encryption
        would launder tampered ciphertext into freshly-MACed garbage.
        (The paper leaves the re-encryption engine's checks implicit;
        SGX-class hardware verifies on every read, including these.)
        """
        old_counters = self.scheme.decode_metadata(self._stored_metadata(group))
        for slot, blk in enumerate(self.scheme.blocks_in_group(group)):
            if blk == skip_block:
                continue  # about to be overwritten with new data anyway
            address = blk * BLOCK_BYTES
            old_nonce = self._nonce(old_counters[slot])
            ciphertext = self._verify_for_reencryption(
                blk, address, self._stored_ciphertext(blk), old_nonce
            )
            plaintext = self._cipher.decrypt(ciphertext, old_nonce, address)
            new_nonce = self._nonce(group_counter)
            ciphertext = self._cipher.encrypt(plaintext, new_nonce, address)
            self._store_block(blk, ciphertext, new_nonce)

    def _verify_for_reencryption(
        self, block: int, address: int, ciphertext: bytes, nonce: int
    ) -> bytes:
        """Integrity check on the re-encryption path.

        Benign <=2-bit faults are corrected exactly as on demand reads
        (MAC-in-ECC configurations); anything else raises.  Returns the
        authenticated (possibly healed) ciphertext to re-encrypt.
        """
        if self.config.mac_in_ecc:
            ecc = self.ecc_fields.get(block)
            result = check_block(self._codec, ciphertext, ecc, address, nonce)
            if result.outcome is CheckOutcome.MAC_UNCORRECTABLE:
                raise IntegrityError(
                    "mac_bits",
                    address,
                    "stored MAC uncorrectable during group re-encryption",
                    outcome=result.outcome,
                )
            if result.ok:
                return ciphertext
            correction = self._corrector.correct(
                ciphertext,
                address,
                nonce,
                result.recovered_mac,
                method=self._correction_method,
            )
            if not correction.corrected:
                raise IntegrityError(
                    "mac",
                    address,
                    "block failed integrity check during group "
                    "re-encryption",
                    outcome=result.outcome,
                    correction=correction,
                )
            self.counters.corrections += 1
            return correction.data
        stored = self.mac_store.get(block)
        if self._mac.tag(ciphertext, address, nonce) != stored:
            raise IntegrityError(
                "mac",
                address,
                "block failed integrity check during group re-encryption",
                outcome=CheckOutcome.DATA_MISMATCH,
            )
        return ciphertext

    def _global_reencrypt(self, skip_block: int) -> None:
        """Handle a monolithic counter wrap: re-encrypt *everything*
        under the new epoch (the model of a full re-key).

        Old counters come from the still-uncommitted serialized storage;
        every block is integrity-verified before re-encryption, as on
        the group path.
        """
        old_epoch = getattr(self.scheme, "epoch", 1) - 1
        decoded_cache: dict[int, list[int]] = {}
        for blk in sorted(self.ciphertexts):
            if blk == skip_block:
                continue
            group = self.scheme.group_of(blk)
            if group not in decoded_cache:
                decoded_cache[group] = self.scheme.decode_metadata(
                    self._stored_metadata(group)
                )
            old_counter = decoded_cache[group][self.scheme.slot_of(blk)]
            old_nonce = self._nonce(old_counter, epoch=old_epoch)
            address = blk * BLOCK_BYTES
            ciphertext = self._verify_for_reencryption(
                blk, address, self.ciphertexts[blk], old_nonce
            )
            plaintext = self._cipher.decrypt(ciphertext, old_nonce, address)
            new_nonce = self._nonce(0)  # counter 0, new epoch
            self._store_block(
                blk, self._cipher.encrypt(plaintext, new_nonce, address),
                new_nonce,
            )
        for group in range(self.scheme.num_groups):
            self._commit_metadata(group)

    def read(self, address: int, *, correct: bool = True) -> ReadResult:
        """Authenticate and decrypt one block.

        Raises :class:`IntegrityError` on tamper/replay or uncorrectable
        faults; transparently corrects <=2-bit faults on MAC-in-ECC
        configurations (writing the corrected ciphertext back, as a
        demand-scrub would).

        ``correct=False`` runs the detection flow only: a data-MAC
        mismatch raises immediately instead of entering flip-and-check.
        Recovery policies use this to try cheap re-reads (which clear
        in-flight transients) before paying for correction.
        """
        with self._probe_read:
            block = self._block_index(address)
            self.counters.reads += 1
            group = self.scheme.group_of(block)
            metadata = self._stored_metadata(group)
            if not self.tree.verify_leaf(group, self._pad_leaf(metadata)):
                self._m_tree_fails.inc()
                raise IntegrityError(
                    "tree", address, "counter storage failed tree verification"
                )
            counter = self.scheme.decode_metadata(metadata)[
                self.scheme.slot_of(block)
            ]
            nonce = self._nonce(counter)
            ciphertext = self._stored_ciphertext(block)
            ecc = self.ecc_fields.get(block) if self.config.mac_in_ecc else None
            if self.read_perturb is not None:
                ciphertext, ecc = self.read_perturb(address, ciphertext, ecc)

            if self.config.mac_in_ecc:
                return self._read_with_ecc(
                    block, address, ciphertext, nonce, ecc, correct=correct
                )
            stored = self.mac_store.get(block)
            self._m_mac_checks.inc()
            if self._mac.tag(ciphertext, address, nonce) != stored:
                self._m_mac_fails.inc()
                raise IntegrityError(
                    "mac",
                    address,
                    "MAC mismatch on separate-MAC configuration",
                    outcome=CheckOutcome.DATA_MISMATCH,
                )
            return ReadResult(
                data=self._cipher.decrypt(ciphertext, nonce, address),
                outcome=CheckOutcome.CLEAN,
            )

    def _read_with_ecc(
        self,
        block: int,
        address: int,
        ciphertext: bytes,
        nonce: int,
        ecc: EccField | None,
        correct: bool = True,
    ) -> ReadResult:
        self._m_mac_checks.inc()
        result = check_block(self._codec, ciphertext, ecc, address, nonce)
        if result.outcome is CheckOutcome.MAC_UNCORRECTABLE:
            self._m_mac_fails.inc()
            raise IntegrityError(
                "mac_bits",
                address,
                "stored MAC bits uncorrectable",
                outcome=result.outcome,
            )
        if result.ok:
            if result.outcome is CheckOutcome.MAC_CORRECTED:
                self.counters.mac_self_corrections += 1
                # Write the healed field back (demand scrub).
                self.ecc_fields[block] = self._codec.build(
                    ciphertext, address, nonce
                )
            return ReadResult(
                data=self._cipher.decrypt(ciphertext, nonce, address),
                outcome=result.outcome,
            )
        if not correct:
            self._m_mac_fails.inc()
            raise IntegrityError(
                "mac",
                address,
                "MAC mismatch on detection-only read",
                outcome=result.outcome,
            )
        # Data MAC mismatch: attempt flip-and-check before declaring tamper.
        correction = self._corrector.correct(
            ciphertext,
            address,
            nonce,
            result.recovered_mac,
            method=self._correction_method,
        )
        if not correction.corrected:
            self._m_mac_fails.inc()
            raise IntegrityError(
                "mac",
                address,
                "MAC mismatch not explained by <=2 bit flips: tampering",
                outcome=result.outcome,
                correction=correction,
            )
        self.counters.corrections += 1
        self.ciphertexts[block] = correction.data
        self.ecc_fields[block] = self._codec.build(
            correction.data, address, nonce
        )
        return ReadResult(
            data=self._cipher.decrypt(correction.data, nonce, address),
            outcome=CheckOutcome.DATA_MISMATCH,
            corrected_bits=correction.flipped_bits,
            correction_checks=correction.checks,
        )

    # -- fault injection / attacker operations -------------------------------------

    def flip_data_bits(self, address: int, positions: Iterable[int]) -> None:
        """Inject DRAM faults: flip ciphertext bits (0..511)."""
        block = self._block_index(address)
        data = bytearray(self._stored_ciphertext(block))
        for position in positions:
            if not 0 <= position < BLOCK_BYTES * 8:
                raise ValueError("bit position out of range")
            data[position >> 3] ^= 1 << (position & 7)
        self.ciphertexts[block] = bytes(data)

    def flip_ecc_bits(self, address: int, positions: Iterable[int]) -> None:
        """Inject faults into the stored 64 ECC bits (MAC-in-ECC only)."""
        if not self.config.mac_in_ecc:
            raise ValueError("configuration stores no ECC field")
        block = self._block_index(address)
        self._stored_ciphertext(block)  # ensure initialized
        ecc = self.ecc_fields[block]
        for position in positions:
            ecc = ecc.flip_bit(position)
        self.ecc_fields[block] = ecc

    def snapshot_block(self, address: int) -> dict[str, Any]:
        """Attacker records everything off-chip about a block (for replay)."""
        block = self._block_index(address)
        group = self.scheme.group_of(block)
        return {
            "ciphertext": self._stored_ciphertext(block),
            "ecc": self.ecc_fields.get(block),
            "mac": self.mac_store.get(block),
            "metadata": self._stored_metadata(group),
        }

    def rollback_block(self, address: int, snapshot: dict[str, Any]) -> None:
        """Attacker restores data + MAC + counter storage to an old,
        mutually consistent state.  The tree (whose top lives on-chip)
        cannot be rolled back, so the next read must detect this."""
        block = self._block_index(address)
        group = self.scheme.group_of(block)
        self.ciphertexts[block] = snapshot["ciphertext"]
        if snapshot["ecc"] is not None:
            self.ecc_fields[block] = snapshot["ecc"]
        if snapshot["mac"] is not None:
            self.mac_store[block] = snapshot["mac"]
        self.counter_storage[group] = snapshot["metadata"]

    def corrupt_counter_storage(self, group: int, data: bytes) -> None:
        """Attacker overwrites a counter metadata block."""
        self.counter_storage[group] = data

    def corrupt_tree_node(self, level: int, index: int, data: bytes) -> None:
        """Attacker overwrites an off-chip interior tree node."""
        if (level, index) not in self.tree.offchip:
            raise KeyError(f"no off-chip node at level {level}, index {index}")
        self.tree.offchip[(level, index)] = data

    def scrub_iter(self) -> Iterator[tuple[int, bytes, EccField]]:
        """Yield (address, ciphertext, EccField) for the scrubber."""
        if not self.config.mac_in_ecc:
            raise ValueError("scrubbing needs the MAC-in-ECC layout")
        for block in sorted(self.ciphertexts):
            yield (
                block * BLOCK_BYTES,
                self.ciphertexts[block],
                self.ecc_fields[block],
            )


__all__ = ["SecureMemory", "ReadResult", "IntegrityError", "EngineCounters"]
