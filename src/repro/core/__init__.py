"""The paper's primary contribution.

* :mod:`repro.core.counters` -- per-block encryption-counter
  representations: monolithic (SGX-style), split counters (the prior-art
  comparator), 7-bit frame-of-reference delta encoding, and dual-length
  delta encoding, with the paper's reset / re-encode overflow mitigations.
* :mod:`repro.core.ecc_mac` -- the MAC-in-ECC layout, detection flow,
  brute-force flip-and-check correction, and the scrub pass.
* :mod:`repro.core.engine` -- the memory-encryption engine tying counters,
  MACs, the Bonsai Merkle tree and the metadata cache together.
"""
