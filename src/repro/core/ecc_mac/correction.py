"""Brute-force flip-and-check error correction (paper Section 3.4).

When the data MAC check fails but the counter is tree-verified, the
failure may be a DRAM fault rather than tampering.  MACs cannot point at
the flipped bit, so the paper corrects by brute force: flip each of the
512 ciphertext bits and re-check the MAC (<= 512 checks for single-bit
errors), then each of the C(512,2) = 130,816 pairs for double-bit errors.
The paper argues this is feasible because GF-multiplication MACs evaluate
in ~1 hardware cycle and DRAM faults are rare.

Two implementations are provided:

* :meth:`FlipAndCheckCorrector.correct_brute_force` -- the literal
  algorithm, counting every MAC evaluation (the cost model behind the
  paper's "512 / 130,816 checks" numbers, exercised by the ablation
  bench).
* :meth:`FlipAndCheckCorrector.correct_accelerated` -- exploits the
  GF(2)-linearity of the Carter-Wegman hash: flipping bit *i* shifts the
  tag by a precomputable syndrome s_i, so a single-bit error satisfies
  ``s_i == observed_delta`` (one table lookup) and a double-bit error
  satisfies ``s_i ^ s_j == observed_delta`` (meet-in-the-middle, O(512)
  lookups).  Candidates are confirmed with a real MAC check, so a 56-bit
  syndrome collision can never cause a silent miscorrection.  This is an
  *extension* beyond the paper (its "future work" of making correction
  cheap), and the test suite proves it equivalent to brute force.

If no <=2-bit flip explains the mismatch, the block is reported
uncorrectable -- the engine then treats it as tampering (raising an
integrity violation), exactly the conservative behaviour the paper's
threat model requires.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from itertools import combinations

from repro.crypto.mac import CarterWegmanMac

BLOCK_BITS = 512
BLOCK_BYTES = 64


class CorrectionMethod(enum.Enum):
    BRUTE_FORCE = "brute_force"
    ACCELERATED = "accelerated"


@dataclass(frozen=True)
class CorrectionResult:
    """Outcome of a correction attempt.

    ``checks`` counts MAC evaluations (brute force) or syndrome lookups
    plus confirming MAC evaluations (accelerated) -- the quantity the
    paper's latency argument is about.
    """

    corrected: bool
    data: bytes | None
    flipped_bits: tuple[int, ...]
    checks: int
    method: CorrectionMethod

    @property
    def error_weight(self) -> int:
        return len(self.flipped_bits)


def _flip(data: bytes, positions: tuple[int, ...]) -> bytes:
    out = bytearray(data)
    for position in positions:
        out[position >> 3] ^= 1 << (position & 7)
    return bytes(out)


class FlipAndCheckCorrector:
    """Corrects single/double bit errors in a 64-byte ciphertext whose MAC
    failed, given the trusted (tree-verified) counter and recovered MAC."""

    def __init__(self, mac: CarterWegmanMac, max_errors: int = 2) -> None:
        if max_errors not in (1, 2):
            raise ValueError(
                "flip-and-check supports max_errors of 1 or 2; beyond "
                "double errors the paper's own latency analysis rules it out"
            )
        self.mac = mac
        self.max_errors = max_errors
        # lazily built, depend only on the key
        self._syndromes: list[int] | None = None
        self._syndrome_index: dict[int, list[int]] | None = None

    # -- the literal paper algorithm ------------------------------------------

    def correct_brute_force(
        self, ciphertext: bytes, address: int, counter: int, stored_mac: int
    ) -> CorrectionResult:
        """Flip bits one (then two) at a time, re-checking the MAC."""
        self._validate(ciphertext)
        checks = 0
        for position in range(BLOCK_BITS):
            candidate = _flip(ciphertext, (position,))
            checks += 1
            if self.mac.tag(candidate, address, counter) == stored_mac:
                return CorrectionResult(
                    True, candidate, (position,), checks,
                    CorrectionMethod.BRUTE_FORCE,
                )
        if self.max_errors >= 2:
            for pair in combinations(range(BLOCK_BITS), 2):
                candidate = _flip(ciphertext, pair)
                checks += 1
                if self.mac.tag(candidate, address, counter) == stored_mac:
                    return CorrectionResult(
                        True, candidate, pair, checks,
                        CorrectionMethod.BRUTE_FORCE,
                    )
        return CorrectionResult(
            False, None, (), checks, CorrectionMethod.BRUTE_FORCE
        )

    # -- linearity-accelerated variant ------------------------------------------

    def _ensure_syndromes(self) -> None:
        if self._syndromes is None:
            self._syndromes = self.mac.single_bit_syndromes(BLOCK_BYTES)
            index: dict[int, list[int]] = {}
            for position, syndrome in enumerate(self._syndromes):
                index.setdefault(syndrome, []).append(position)
            self._syndrome_index = index

    def correct_accelerated(
        self, ciphertext: bytes, address: int, counter: int, stored_mac: int
    ) -> CorrectionResult:
        """Syndrome-decode using MAC linearity; confirm with real checks."""
        self._validate(ciphertext)
        self._ensure_syndromes()
        assert self._syndromes is not None
        assert self._syndrome_index is not None
        delta = self.mac.tag(ciphertext, address, counter) ^ stored_mac
        checks = 0

        # Single-bit candidates: syndrome == delta.
        for position in self._syndrome_index.get(delta, ()):
            candidate = _flip(ciphertext, (position,))
            checks += 1
            if self.mac.tag(candidate, address, counter) == stored_mac:
                return CorrectionResult(
                    True, candidate, (position,), checks,
                    CorrectionMethod.ACCELERATED,
                )

        if self.max_errors >= 2:
            # Double-bit: s_i ^ s_j == delta -> look up delta ^ s_i.
            for i in range(BLOCK_BITS):
                partner = delta ^ self._syndromes[i]
                for j in self._syndrome_index.get(partner, ()):
                    if j <= i:
                        continue
                    candidate = _flip(ciphertext, (i, j))
                    checks += 1
                    if self.mac.tag(candidate, address, counter) == stored_mac:
                        return CorrectionResult(
                            True, candidate, (i, j), checks,
                            CorrectionMethod.ACCELERATED,
                        )
        return CorrectionResult(
            False, None, (), checks, CorrectionMethod.ACCELERATED
        )

    def correct(
        self,
        ciphertext: bytes,
        address: int,
        counter: int,
        stored_mac: int,
        method: CorrectionMethod = CorrectionMethod.ACCELERATED,
    ) -> CorrectionResult:
        """Dispatch to the requested correction algorithm."""
        if method is CorrectionMethod.BRUTE_FORCE:
            return self.correct_brute_force(
                ciphertext, address, counter, stored_mac
            )
        return self.correct_accelerated(
            ciphertext, address, counter, stored_mac
        )

    # -- parity-hint extension ---------------------------------------------

    def correct_with_parity_hint(
        self,
        ciphertext: bytes,
        address: int,
        counter: int,
        stored_mac: int,
        stored_ct_parity: int,
    ) -> CorrectionResult:
        """Brute force guided by the layout's ciphertext parity bit.

        The spare bit the paper dedicates to scrubbing (Section 3.3) also
        tells the corrector the *parity of the error weight*: a parity
        mismatch means an odd number of flips (search singles first and
        skip pairs); a match means an even number (skip the 512 single
        checks and go straight to pairs).  This halves-or-better the
        brute-force work at zero hardware cost -- an extension beyond the
        paper, validated against the unhinted algorithms in the tests.

        (Assumes the parity bit itself is intact; a flipped parity bit
        plus a double error would mislead the hint, which is why the
        result is still confirmed by real MAC checks and a failed hinted
        search can fall back to the full search.)
        """
        self._validate(ciphertext)
        from repro.ecc.parity import parity_of_bytes

        parity_mismatch = parity_of_bytes(ciphertext) != (
            stored_ct_parity & 1
        )
        checks = 0
        if parity_mismatch:
            # Odd error weight: singles only (within the <=2 budget).
            for position in range(BLOCK_BITS):
                candidate = _flip(ciphertext, (position,))
                checks += 1
                if self.mac.tag(candidate, address, counter) == stored_mac:
                    return CorrectionResult(
                        True, candidate, (position,), checks,
                        CorrectionMethod.BRUTE_FORCE,
                    )
            return CorrectionResult(
                False, None, (), checks, CorrectionMethod.BRUTE_FORCE
            )
        # Even error weight: pairs only.
        if self.max_errors >= 2:
            for pair in combinations(range(BLOCK_BITS), 2):
                candidate = _flip(ciphertext, pair)
                checks += 1
                if self.mac.tag(candidate, address, counter) == stored_mac:
                    return CorrectionResult(
                        True, candidate, pair, checks,
                        CorrectionMethod.BRUTE_FORCE,
                    )
        return CorrectionResult(
            False, None, (), checks, CorrectionMethod.BRUTE_FORCE
        )

    @staticmethod
    def _validate(ciphertext: bytes) -> None:
        if len(ciphertext) != BLOCK_BYTES:
            raise ValueError(f"ciphertext must be {BLOCK_BYTES} bytes")

    # -- cost model -----------------------------------------------------------

    @staticmethod
    def worst_case_checks(max_errors: int) -> int:
        """The paper's Section 3.4 cost bound for brute force."""
        if max_errors == 1:
            return BLOCK_BITS
        if max_errors == 2:
            return BLOCK_BITS + BLOCK_BITS * (BLOCK_BITS - 1) // 2
        raise ValueError("cost model defined for 1 or 2 errors")


__all__ = [
    "FlipAndCheckCorrector",
    "CorrectionResult",
    "CorrectionMethod",
    "BLOCK_BITS",
]
