"""Parity-assisted DRAM scrubbing (paper Section 3.3, "Enabling Efficient
Scrubbing").

Scrubbers periodically sweep memory looking for latent single-bit upsets
before they accumulate into uncorrectable multi-bit errors.  Conventional
scrubbers rely on the ECC bits; with MACs occupying that space, the paper
keeps scrubbing cheap via two residual parity checks per block:

* the 1 spare bit stores even parity over the ciphertext -- any odd
  number of data flips trips it without recomputing the MAC;
* the Hamming code over the MAC contains its own overall parity bit, so
  the stored MAC bits are scrubbable the same way.

Blocks that fail either quick check are flagged for the full MAC
verify + flip-and-check path.  (An even number of flips escapes the parity
sweep -- that is inherent to parity scrubbing and true of conventional
scrubbers too; such errors are still *detected* at the next demand read's
MAC check.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Collection, Iterable

from repro.core.ecc_mac.layout import EccField, MacEccCodec
from repro.ecc.hamming import DecodeStatus
from repro.ecc.parity import parity_of_bytes
from repro.obs.metrics import MetricRegistry, get_registry
from repro.obs.probe import ProbePoint


@dataclass
class ScrubReport:
    """Result of one scrub sweep."""

    blocks_scanned: int = 0
    blocks_skipped: int = 0
    data_parity_failures: list[int] = field(default_factory=list)
    mac_parity_failures: list[int] = field(default_factory=list)

    @property
    def suspicious_blocks(self) -> list[int]:
        """Addresses needing the full verify/correct path.

        A block that trips both the data-parity and the MAC-parity check
        appears once: the follow-up MAC pass must not verify it twice.
        """
        return sorted(
            set(self.data_parity_failures) | set(self.mac_parity_failures)
        )


class Scrubber:
    """Sweep (address, ciphertext, ecc_field) triples with parity checks."""

    def __init__(
        self, codec: MacEccCodec, registry: MetricRegistry | None = None
    ) -> None:
        registry = registry if registry is not None else get_registry()
        self._codec = codec
        # Registry copies of the per-sweep ScrubReport tallies: the
        # report stays a plain per-call result object (it carries the
        # failing address lists), the counters accumulate across sweeps.
        self._m_scanned = registry.counter("scrub.blocks_scanned")
        self._m_skipped = registry.counter("scrub.blocks_skipped")
        self._m_data_parity = registry.counter("scrub.data_parity_fail")
        self._m_mac_parity = registry.counter("scrub.mac_parity_fail")
        self._probe_sweep = ProbePoint("scrub.sweep", registry=registry)

    def scrub(
        self,
        blocks: Iterable[tuple[int, bytes, EccField]],
        skip: Collection[int] = (),
    ) -> ScrubReport:
        """Quick-scan blocks; flags parity mismatches only (no MAC work).

        ``blocks`` yields ``(address, ciphertext, EccField)`` triples.
        ``skip`` lists block addresses the sweep must pass over -- the
        quarantine map feeds retired (remapped-away) blocks here so the
        scrubber neither wastes bandwidth on them nor re-flags faults
        that have already been retired out of service.
        """
        report = ScrubReport()
        skip = frozenset(skip)
        with self._probe_sweep:
            for address, ciphertext, ecc in blocks:
                if address in skip:
                    report.blocks_skipped += 1
                    continue
                report.blocks_scanned += 1
                if parity_of_bytes(ciphertext) != ecc.ct_parity:
                    report.data_parity_failures.append(address)
                # The Hamming code's syndrome machinery doubles as the MAC
                # parity check: anything but CLEAN is suspicious.
                if (
                    self._codec.recover_mac(ecc).status
                    is not DecodeStatus.CLEAN
                ):
                    report.mac_parity_failures.append(address)
        self._m_scanned.inc(report.blocks_scanned)
        self._m_skipped.inc(report.blocks_skipped)
        self._m_data_parity.inc(len(report.data_parity_failures))
        self._m_mac_parity.inc(len(report.mac_parity_failures))
        return report


__all__ = ["Scrubber", "ScrubReport"]
