"""Error-detection flow for MAC-in-ECC blocks (paper Section 3.3).

On every read the controller receives the 64-byte ciphertext and its 64
ECC bits in the same burst.  The check proceeds:

1. Hamming-decode the (MAC, check) pair: corrects a single flip *in the
   stored MAC bits*, detects doubles.  If the MAC bits are uncorrectable,
   the block's integrity cannot be vouched for locally.
2. Recompute the MAC over the received ciphertext under the tree-verified
   counter and compare.  A match means the data is authentic and clean; a
   mismatch means either a hardware fault in the data bits (any number of
   flips is *detected*, unlike SEC-DED's 2-per-word limit) or tampering.

Distinguishing fault from attack is the correction step's job
(:mod:`repro.core.ecc_mac.correction`): if flip-and-check finds a small
number of flips that make the MAC verify, it was a fault; otherwise the
engine must treat the block as tampered.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.ecc_mac.layout import EccField, MacEccCodec
from repro.ecc.hamming import DecodeStatus


class CheckOutcome(enum.Enum):
    """Verdict of the read-path integrity/error check."""

    CLEAN = "clean"  # MAC bits clean, data MAC verifies
    MAC_CORRECTED = "mac_corrected"  # 1 flip in stored MAC fixed, data ok
    DATA_MISMATCH = "data_mismatch"  # MAC check failed -> fault or tamper
    MAC_UNCORRECTABLE = "mac_uncorrectable"  # >=2 flips in stored MAC bits


@dataclass(frozen=True)
class CheckResult:
    """Outcome plus the recovered MAC (needed by the corrector)."""

    outcome: CheckOutcome
    recovered_mac: int | None
    computed_mac: int

    @property
    def ok(self) -> bool:
        return self.outcome in (CheckOutcome.CLEAN, CheckOutcome.MAC_CORRECTED)


def check_block(
    codec: MacEccCodec,
    ciphertext: bytes,
    field: EccField,
    address: int,
    counter: int,
) -> CheckResult:
    """Run the full Section 3.3 detection flow for one block."""
    recovery = codec.recover_mac(field)
    computed = codec.mac.tag(ciphertext, address, counter)
    if recovery.status is DecodeStatus.DETECTED:
        return CheckResult(
            outcome=CheckOutcome.MAC_UNCORRECTABLE,
            recovered_mac=None,
            computed_mac=computed,
        )
    stored = recovery.data
    if stored == computed:
        outcome = (
            CheckOutcome.CLEAN
            if recovery.status is DecodeStatus.CLEAN
            else CheckOutcome.MAC_CORRECTED
        )
    else:
        outcome = CheckOutcome.DATA_MISMATCH
    return CheckResult(
        outcome=outcome, recovered_mac=stored, computed_mac=computed
    )


__all__ = ["CheckOutcome", "CheckResult", "check_block"]
