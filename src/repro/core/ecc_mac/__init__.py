"""MAC-in-ECC: authentication + error correction in the ECC bits.

Implements paper Section 3: the 64 ECC bits a conventional DIMM stores per
64-byte block are repurposed as

    56-bit Carter-Wegman MAC | 7-bit Hamming SEC-DED over the MAC | 1
    ciphertext parity bit (Figure 2),

giving authentication, full error *detection* on data (any number of
flips fails the MAC check), SEC-DED protection of the MAC bits themselves,
and brute-force *flip-and-check* error correction (Section 3.4).
"""

from repro.core.ecc_mac.layout import EccField, MacEccCodec
from repro.core.ecc_mac.detection import CheckOutcome, CheckResult
from repro.core.ecc_mac.correction import (
    CorrectionMethod,
    CorrectionResult,
    FlipAndCheckCorrector,
)
from repro.core.ecc_mac.scrubber import ScrubReport, Scrubber

__all__ = [
    "EccField",
    "MacEccCodec",
    "CheckOutcome",
    "CheckResult",
    "FlipAndCheckCorrector",
    "CorrectionMethod",
    "CorrectionResult",
    "Scrubber",
    "ScrubReport",
]
