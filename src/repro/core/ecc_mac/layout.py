"""The 64-bit ECC field layout of Figure 2.

Per 64-byte ciphertext block the ECC chips store:

=======  =====  ==========================================================
bits     width  contents
=======  =====  ==========================================================
0..55    56     Carter-Wegman MAC over the ciphertext (keyed, nonce-bound)
56..62   7      Hamming SEC-DED check bits over the 56 MAC bits
63       1      even-parity bit over the ciphertext (scrubbing aid)
=======  =====  ==========================================================

The 7 check bits let the controller correct a single flip *in the MAC
itself* and detect doubles without touching the integrity tree
(Section 3.3, "Corrupted MACs"); the parity bit lets a scrubber sweep for
single-bit data upsets without recomputing MACs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.mac import CarterWegmanMac, MAC_BITS, MAC_MASK
from repro.ecc.hamming import HammingResult, HammingSecDed
from repro.ecc.parity import parity_of_bytes

# The field geometry is the RL001 contract table's ECC_FIELD_LAYOUT: one
# source of truth shared by this codec and the checker that guards it.
from repro.lint.contracts import (
    CT_PARITY_SHIFT as _CT_PARITY_SHIFT,
    ECC_FIELD_BITS,
    ECC_FIELD_BYTES,
    HAMMING_BITS as _MAC_CHECK_BITS,
    MAC_CHECK_SHIFT as _MAC_CHECK_SHIFT,
)


@dataclass(frozen=True)
class EccField:
    """Decoded view of one block's 64 ECC bits."""

    mac: int  # 56-bit MAC tag
    mac_check: int  # 7-bit Hamming SEC-DED over the MAC
    ct_parity: int  # 1 parity bit over the ciphertext

    def __post_init__(self):
        if not 0 <= self.mac <= MAC_MASK:
            raise ValueError("mac must be a 56-bit value")
        if not 0 <= self.mac_check < (1 << _MAC_CHECK_BITS):
            raise ValueError("mac_check must be a 7-bit value")
        if self.ct_parity not in (0, 1):
            raise ValueError("ct_parity must be 0 or 1")

    def pack(self) -> bytes:
        """Serialize to the 8 bytes the ECC chips store."""
        word = (
            self.mac
            | (self.mac_check << _MAC_CHECK_SHIFT)
            | (self.ct_parity << _CT_PARITY_SHIFT)
        )
        return word.to_bytes(ECC_FIELD_BYTES, "little")

    @classmethod
    def unpack(cls, raw: bytes) -> "EccField":
        """Parse the 8 stored ECC bytes."""
        if len(raw) != ECC_FIELD_BYTES:
            raise ValueError(f"ECC field must be {ECC_FIELD_BYTES} bytes")
        word = int.from_bytes(raw, "little")
        return cls(
            mac=word & MAC_MASK,
            mac_check=(word >> _MAC_CHECK_SHIFT) & ((1 << _MAC_CHECK_BITS) - 1),
            ct_parity=(word >> _CT_PARITY_SHIFT) & 1,
        )

    def flip_bit(self, position: int) -> "EccField":
        """Return a copy with one of the 64 stored bits flipped (for fault
        injection)."""
        if not 0 <= position < ECC_FIELD_BITS:
            raise ValueError("position must be within the 64-bit field")
        word = int.from_bytes(self.pack(), "little") ^ (1 << position)
        return EccField.unpack(word.to_bytes(ECC_FIELD_BYTES, "little"))


class MacEccCodec:
    """Build and self-check ECC fields for ciphertext blocks.

    Owns the MAC key and the 56-bit Hamming codec; the higher-level
    detection/correction flows compose this with the tree-verified counter.
    """

    def __init__(self, mac: CarterWegmanMac):
        self.mac = mac
        self.mac_hamming = HammingSecDed(MAC_BITS)
        assert self.mac_hamming.check_bits == _MAC_CHECK_BITS

    def build(self, ciphertext: bytes, address: int, counter: int) -> EccField:
        """Compute the full ECC field stored alongside a ciphertext."""
        tag = self.mac.tag(ciphertext, address, counter)
        return EccField(
            mac=tag,
            mac_check=self.mac_hamming.encode(tag),
            ct_parity=parity_of_bytes(ciphertext),
        )

    def recover_mac(self, field: EccField) -> HammingResult:
        """Self-correct the stored MAC using its 7 Hamming bits.

        Returns the Hamming decode result: the (possibly corrected) MAC and
        whether the MAC bits were clean / corrected / uncorrectable.
        """
        return self.mac_hamming.decode(field.mac, field.mac_check)


__all__ = ["EccField", "MacEccCodec", "ECC_FIELD_BITS", "ECC_FIELD_BYTES"]
