"""Counter-scheme event records and aggregate statistics.

Table 2 of the paper counts *re-encryptions per billion cycles* for three
counter representations; the ablation benches additionally need resets,
re-encodes and group widenings.  Every scheme reports what happened on each
write through these shared types so the harness can aggregate uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.obs.metrics import Labels, MetricRegistry, RegistryView


class CounterEvent(enum.Enum):
    """Things that can happen while incrementing a block's counter."""

    INCREMENT = "increment"  # plain delta/minor bump
    RESET = "reset"  # all deltas converged -> folded into reference
    RE_ENCODE = "re_encode"  # delta_min subtracted into the reference
    WIDEN = "widen"  # dual-length: overflow bits assigned to a group
    RE_ENCRYPT = "re_encrypt"  # block-group re-encrypted with a new counter
    GLOBAL_RE_ENCRYPT = "global_re_encrypt"  # monolithic counter wrapped


@dataclass
class WriteOutcome:
    """Result of one counter increment.

    ``counter`` is the encryption counter the written block must be
    encrypted with.  When ``reencrypted_group`` is set, the engine must
    also re-encrypt every other block of that group using
    ``group_counter`` (the identical fresh counter the paper's Figure 5a
    assigns to the whole group).
    """

    counter: int
    events: tuple[CounterEvent, ...] = ()
    reencrypted_group: int | None = None
    group_counter: int | None = None

    def has(self, event: CounterEvent) -> bool:
        return event in self.events


class CounterStats(RegistryView):
    """Aggregate event counts across a run (drives Table 2).

    Registry view: when built by a :class:`~repro.core.counters.base.
    CounterScheme` the fields live in the active metrics registry under
    ``counters.<scheme>.*`` (e.g. ``counters.delta.reencode``); built
    bare -- ``CounterStats(writes=5)`` -- it owns a private registry and
    behaves like the old standalone dataclass.
    """

    _VIEW_FIELDS = {
        "writes": "write",
        "increments": "increment",
        "resets": "reset",
        "re_encodes": "reencode",
        "widens": "widen",
        "re_encryptions": "reencrypt",
        "global_re_encryptions": "global_reencrypt",
    }

    def __init__(
        self,
        *,
        registry: MetricRegistry | None = None,
        labels: Labels | None = None,
        prefix: str = "counters",
        **initial: int,
    ) -> None:
        super().__init__(
            registry=registry, labels=labels, prefix=prefix, **initial
        )
        self.per_group_re_encryptions: dict[int, int] = {}

    _FIELD_BY_EVENT = {
        CounterEvent.INCREMENT: "increments",
        CounterEvent.RESET: "resets",
        CounterEvent.RE_ENCODE: "re_encodes",
        CounterEvent.WIDEN: "widens",
        CounterEvent.RE_ENCRYPT: "re_encryptions",
        CounterEvent.GLOBAL_RE_ENCRYPT: "global_re_encryptions",
    }

    def record(self, outcome: WriteOutcome, group: int | None = None) -> None:
        """Fold one write outcome into the aggregates."""
        self.writes += 1
        for event in outcome.events:
            name = self._FIELD_BY_EVENT[event]
            setattr(self, name, getattr(self, name) + 1)
        if CounterEvent.RE_ENCRYPT in outcome.events and group is not None:
            self.per_group_re_encryptions[group] = (
                self.per_group_re_encryptions.get(group, 0) + 1
            )

    def merge(self, other: CounterStats) -> None:
        """Accumulate another stats object (e.g. across trace segments)."""
        self.writes += other.writes
        self.increments += other.increments
        self.resets += other.resets
        self.re_encodes += other.re_encodes
        self.widens += other.widens
        self.re_encryptions += other.re_encryptions
        self.global_re_encryptions += other.global_re_encryptions
        for group, count in other.per_group_re_encryptions.items():
            self.per_group_re_encryptions[group] = (
                self.per_group_re_encryptions.get(group, 0) + count
            )


__all__ = ["CounterEvent", "WriteOutcome", "CounterStats"]
