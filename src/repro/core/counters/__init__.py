"""Counter-representation schemes for counter-mode memory encryption.

Four interchangeable implementations of the
:class:`~repro.core.counters.base.CounterScheme` interface:

===================  ===========================  =======================
scheme               storage per 4 KB group        overflow handling
===================  ===========================  =======================
``monolithic``       64 x 56 bits (7 blocks)       practically never
``split``            64 + 64 x 7 bits (1 block)    group re-encryption
``delta``            56 + 64 x 7 bits (1 block)    reset / re-encode /
                                                   re-encryption
``dual_length``      56 + 64 x 6 + 72 bits         widen / reset /
                     (1 block)                     re-encode / re-encrypt
===================  ===========================  =======================
"""

from repro.core.counters.base import (
    BLOCK_BYTES,
    METADATA_BLOCK_BYTES,
    CounterScheme,
)
from repro.core.counters.delta import DeltaCounters
from repro.core.counters.dual_length import DualLengthDeltaCounters
from repro.core.counters.events import CounterEvent, CounterStats, WriteOutcome
from repro.core.counters.monolithic import MonolithicCounters
from repro.core.counters.split import SplitCounters

SCHEMES = {
    MonolithicCounters.name: MonolithicCounters,
    SplitCounters.name: SplitCounters,
    DeltaCounters.name: DeltaCounters,
    DualLengthDeltaCounters.name: DualLengthDeltaCounters,
}


def make_scheme(name: str, total_blocks: int, **kwargs) -> CounterScheme:
    """Instantiate a counter scheme by its short name."""
    try:
        cls = SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown counter scheme {name!r}; choose from {sorted(SCHEMES)}"
        ) from None
    return cls(total_blocks, **kwargs)


__all__ = [
    "CounterScheme",
    "MonolithicCounters",
    "SplitCounters",
    "DeltaCounters",
    "DualLengthDeltaCounters",
    "CounterEvent",
    "CounterStats",
    "WriteOutcome",
    "SCHEMES",
    "make_scheme",
    "BLOCK_BYTES",
    "METADATA_BLOCK_BYTES",
]
