"""Dual-length delta encoding (paper Section 4.3, Figure 6).

A constrained variable-length encoding: a 64-block group's deltas are
partitioned into 4 *delta-groups* of 16.  Every delta starts at 6 bits
(instead of 7), which frees 72 bits per metadata block:

    56 (reference) + 64 x 6 (deltas) = 440 bits; 512 - 440 = 72 spare.

When one delta-group overflows its 6-bit capacity, the spare bits are
assigned to it: each of its 16 deltas is *widened by 4 bits* (16 x 4 = 64
bits) and a group-index field records which delta-group owns the extension
(the remaining spare bits hold the index and a valid flag).  Only one
delta-group can be widened at a time; a further overflow in any other
group -- or past the widened 10-bit capacity -- falls back to the ordinary
delta machinery: re-encode if delta_min > 0, else re-encrypt.

On reset or re-encode the widening is *released* when every delta of the
widened group fits 6 bits again, making the spare bits available to the
next hot group.  (The paper does not spell this out; releasing is the
natural hardware behaviour since the extension bits are dead weight once
the deltas shrink, and it is what makes dual-length strictly better than
7-bit deltas on all but pathological workloads -- matching Table 2, where
facesim is exactly such a pathology: several delta-groups overflow
concurrently and cannot all be widened.)

The write path uses the same O(1)-amortized min/max aggregate tracking as
:class:`repro.core.counters.delta.DeltaCounters`.
"""

from __future__ import annotations

from repro.core.counters.base import CounterScheme
from repro.core.counters.events import CounterEvent, WriteOutcome
from repro.lint.contracts import (
    BASE_DELTA_BITS,
    EXTENSION_BITS,
    GROUP_BLOCKS,
    REFERENCE_BITS,
    WIDEN_INDEX_BITS,
    WIDEN_VALID_BITS,
)
from repro.lint.contracts import DELTA_GROUPS as CONTRACT_DELTA_GROUPS
from repro.util.bits import BitReader, BitWriter


class DualLengthDeltaCounters(CounterScheme):
    """6-bit deltas, 4 delta-groups of 16, one widenable to 10 bits.

    The defaults are the Figure 6 layout contract: 56 + 64*6 = 440 bits,
    leaving the contracted 72 reserved bits for the 16x4-bit extension
    field, the widened-group index and its valid flag.
    """

    name = "dual_length"

    DELTA_GROUPS = CONTRACT_DELTA_GROUPS

    def __init__(
        self,
        total_blocks: int,
        blocks_per_group: int = GROUP_BLOCKS,
        base_delta_bits: int = BASE_DELTA_BITS,
        extension_bits: int = EXTENSION_BITS,
        reference_bits: int = REFERENCE_BITS,
        enable_reset: bool = True,
        enable_reencode: bool = True,
    ) -> None:
        super().__init__(total_blocks, blocks_per_group)
        if blocks_per_group % self.DELTA_GROUPS:
            raise ValueError(
                "blocks_per_group must divide into "
                f"{self.DELTA_GROUPS} delta-groups"
            )
        if base_delta_bits <= 0 or extension_bits <= 0:
            raise ValueError("field widths must be positive")
        self.base_delta_bits = base_delta_bits
        self.extension_bits = extension_bits
        self.reference_bits = reference_bits
        self.enable_reset = enable_reset
        self.enable_reencode = enable_reencode
        self.deltas_per_delta_group = blocks_per_group // self.DELTA_GROUPS
        self._base_limit = 1 << base_delta_bits
        self._wide_limit = 1 << (base_delta_bits + extension_bits)
        self._references = [0] * self.num_groups
        self._deltas = [0] * total_blocks
        #: per block-group: which delta-group holds the extension (or None)
        self._widened: list[int | None] = [None] * self.num_groups
        # Incremental aggregates (whole block-group).
        self._min = [0] * self.num_groups
        self._min_count = [blocks_per_group] * self.num_groups
        self._max = [0] * self.num_groups

    # -- reads ----------------------------------------------------------------

    def counter(self, block_index: int) -> int:
        self._check_block(block_index)
        group = block_index // self.blocks_per_group
        return self._references[group] + self._deltas[block_index]

    def reference(self, group_index: int) -> int:
        self._check_group(group_index)
        return self._references[group_index]

    def deltas(self, group_index: int) -> list[int]:
        self._check_group(group_index)
        return [self._deltas[b] for b in self.blocks_in_group(group_index)]

    def widened_delta_group(self, group_index: int) -> int | None:
        """Index of the widened delta-group, or None."""
        self._check_group(group_index)
        return self._widened[group_index]

    def delta_group_of(self, block_index: int) -> int:
        """Which of the 4 delta-groups a block's delta lives in."""
        self._check_block(block_index)
        slot = block_index % self.blocks_per_group
        return slot // self.deltas_per_delta_group

    # -- aggregate maintenance -----------------------------------------------------

    def _group_slice(self, group: int) -> slice:
        start = group * self.blocks_per_group
        return slice(start, start + self.blocks_per_group)

    def _recompute_aggregates(self, group: int) -> None:
        values = self._deltas[self._group_slice(group)]
        lowest = min(values)
        self._min[group] = lowest
        self._min_count[group] = values.count(lowest)
        self._max[group] = max(values)

    def _set_all(self, group: int, value: int) -> None:
        self._deltas[self._group_slice(group)] = (
            [value] * self.blocks_per_group
        )
        self._min[group] = value
        self._min_count[group] = self.blocks_per_group
        self._max[group] = value

    def _capacity(self, group: int, delta_group: int) -> int:
        if self._widened[group] == delta_group:
            return self._wide_limit
        return self._base_limit

    def _delta_group_values(self, group: int, delta_group: int) -> list[int]:
        start = (
            group * self.blocks_per_group
            + delta_group * self.deltas_per_delta_group
        )
        return self._deltas[start : start + self.deltas_per_delta_group]

    def _maybe_release_widening(self, group: int) -> None:
        """Free the extension bits once the widened deltas fit 6 bits."""
        widened = self._widened[group]
        if widened is None:
            return
        if all(
            d < self._base_limit
            for d in self._delta_group_values(group, widened)
        ):
            self._widened[group] = None

    # -- the overflow-avoidance moves --------------------------------------------------

    def _do_reset(self, group: int) -> None:
        """Caller guarantees min == max != 0."""
        self._references[group] += self._min[group]
        self._set_all(group, 0)
        self._widened[group] = None  # all deltas are 0: release

    def _try_reencode(self, group: int) -> bool:
        delta_min = self._min[group]
        if delta_min == 0:
            return False
        self._references[group] += delta_min
        sl = self._group_slice(group)
        self._deltas[sl] = [d - delta_min for d in self._deltas[sl]]
        self._min[group] = 0
        self._max[group] -= delta_min
        self._maybe_release_widening(group)
        return True

    def _reencrypt(self, group: int, overflow_value: int) -> int:
        """New reference strictly above every counter ever used in the
        group (the overflowing block's next value may not be the group max
        when another delta-group is widened, so take the max explicitly)."""
        bump = max(overflow_value, self._max[group] + 1)
        self._references[group] += bump
        self._set_all(group, 0)
        self._widened[group] = None
        return self._references[group]

    # -- the write path -------------------------------------------------------------

    def _increment(self, block_index: int) -> WriteOutcome:
        group = block_index // self.blocks_per_group
        delta_group = self.delta_group_of(block_index)
        events: list[CounterEvent] = []
        current = self._deltas[block_index]
        tentative = current + 1

        if tentative >= self._capacity(group, delta_group):
            if (
                tentative < self._wide_limit
                and self._widened[group] is None
            ):
                # Assign the spare overflow bits to this delta-group.
                self._widened[group] = delta_group
                events.append(CounterEvent.WIDEN)
            elif self.enable_reencode and self._try_reencode(group):
                events.append(CounterEvent.RE_ENCODE)
                current = self._deltas[block_index]
                tentative = current + 1
                if tentative >= self._capacity(group, delta_group):
                    if (
                        tentative < self._wide_limit
                        and self._widened[group] is None
                    ):
                        # Re-encode released the extension bits; claim them
                        # for this delta-group instead of re-encrypting.
                        self._widened[group] = delta_group
                        events.append(CounterEvent.WIDEN)
                    else:
                        # Re-encode shifted by delta_min but the hot delta
                        # is still at capacity: re-encrypt.
                        group_counter = self._reencrypt(group, tentative)
                        events.append(CounterEvent.RE_ENCRYPT)
                        return WriteOutcome(
                            counter=group_counter,
                            events=tuple(events),
                            reencrypted_group=group,
                            group_counter=group_counter,
                        )
            else:
                group_counter = self._reencrypt(group, tentative)
                events.append(CounterEvent.RE_ENCRYPT)
                return WriteOutcome(
                    counter=group_counter,
                    events=tuple(events),
                    reencrypted_group=group,
                    group_counter=group_counter,
                )

        self._deltas[block_index] = tentative
        if tentative > self._max[group]:
            self._max[group] = tentative
        if current == self._min[group]:
            self._min_count[group] -= 1
            if self._min_count[group] == 0:
                self._recompute_aggregates(group)
        counter = self._references[group] + tentative
        events.append(CounterEvent.INCREMENT)
        if (
            self.enable_reset
            and self._min[group] == self._max[group]
            and self._min[group] != 0
        ):
            self._do_reset(group)
            events.append(CounterEvent.RESET)
        return WriteOutcome(counter=counter, events=tuple(events))

    # -- storage / serialization -----------------------------------------------------

    @property
    def bits_per_group(self) -> int:
        # reference + base deltas + extension field + group index + valid.
        return (
            self.reference_bits
            + self.base_delta_bits * self.blocks_per_group
            + self.extension_bits * self.deltas_per_delta_group
            + WIDEN_INDEX_BITS
            + WIDEN_VALID_BITS
        )

    def group_metadata(self, group_index: int) -> bytes:
        """Serialize exactly as the hardware layout of Figure 6: reference,
        6-bit base fields, the 4-bit extension fields, the widened-group
        index and a valid flag."""
        self._check_group(group_index)
        writer = BitWriter()
        writer.write(self._references[group_index], self.reference_bits)
        widened = self._widened[group_index]
        base_mask = self._base_limit - 1
        for block in self.blocks_in_group(group_index):
            writer.write(
                self._deltas[block] & base_mask, self.base_delta_bits
            )
        # Extension payload: high bits of the widened group's deltas.
        if widened is None:
            for _ in range(self.deltas_per_delta_group):
                writer.write(0, self.extension_bits)
            writer.write(0, WIDEN_INDEX_BITS)
            writer.write(0, WIDEN_VALID_BITS)  # valid = 0
        else:
            for value in self._delta_group_values(group_index, widened):
                writer.write(value >> self.base_delta_bits, self.extension_bits)
            writer.write(widened, WIDEN_INDEX_BITS)
            writer.write(1, WIDEN_VALID_BITS)  # valid = 1
        length = -(-writer.bit_length // 8)
        padded = -(-length // 64) * 64
        return writer.to_bytes(padded)

    def decode_metadata(self, data: bytes) -> list[int]:
        """The Figure 7 decode unit: splice extension bits back onto the
        widened delta-group, then sum reference + delta per slot."""
        reader = BitReader(data)
        reference = reader.read(self.reference_bits)
        base = [
            reader.read(self.base_delta_bits)
            for _ in range(self.blocks_per_group)
        ]
        extension = [
            reader.read(self.extension_bits)
            for _ in range(self.deltas_per_delta_group)
        ]
        widened = reader.read(WIDEN_INDEX_BITS)
        valid = reader.read(WIDEN_VALID_BITS)
        deltas = list(base)
        if valid:
            start = widened * self.deltas_per_delta_group
            for offset, high in enumerate(extension):
                deltas[start + offset] |= high << self.base_delta_bits
        return [reference + d for d in deltas]

    def restore_group_metadata(self, group_index: int, data: bytes) -> None:
        self._check_group(group_index)
        reader = BitReader(data)
        self._references[group_index] = reader.read(self.reference_bits)
        base = [
            reader.read(self.base_delta_bits)
            for _ in range(self.blocks_per_group)
        ]
        extension = [
            reader.read(self.extension_bits)
            for _ in range(self.deltas_per_delta_group)
        ]
        widened = reader.read(WIDEN_INDEX_BITS)
        valid = reader.read(WIDEN_VALID_BITS)
        if valid:
            start = widened * self.deltas_per_delta_group
            for offset, high in enumerate(extension):
                base[start + offset] |= high << self.base_delta_bits
        self._widened[group_index] = widened if valid else None
        self._deltas[self._group_slice(group_index)] = base
        self._recompute_aggregates(group_index)


__all__ = ["DualLengthDeltaCounters"]
