"""Frame-of-reference delta-encoded counters (paper Section 4).

Each block-group stores one wide *reference* counter R (56 bits, never
overflows in practice) and one small *delta* per block; a block's
encryption counter is ``R + delta``.  With 7-bit deltas and 64-block (4 KB)
groups, a group's counters fit one 64-byte metadata block: 56 + 64*7 = 504
of 512 bits.

Because the counter is a *sum* (not a concatenation as in split counters),
two overflow-avoidance moves become possible (Section 4.3):

* **Reset** (Figure 5b): when every delta in the group has converged to
  the same non-zero value d, fold it into the reference (R += d, deltas
  := 0).  Pure re-labelling -- no counter value changes, nothing is
  re-encrypted.  Triggered after each successful increment.
* **Re-encode** (Figure 5c): on overflow, subtract the group's minimum
  delta from every delta and add it to the reference.  Also pure
  re-labelling; possible only when delta_min > 0.

Only when both fail does the group get re-encrypted (Figure 5a): the
overflowing counter R + 2^bits is the largest in the group, so it becomes
the new reference, all deltas reset, and every block is re-encrypted under
that identical fresh counter.

Both optimizations are individually toggleable so the ablation benches can
isolate their contributions.

Implementation note: the hardware's reset detector ("checks if all the
deltas are identical", Section 4.4) is a comparator tree; here the
condition is tracked incrementally (per-group min / min-multiplicity /
max) so the software hot path is O(1) amortized -- increments only grow
values, so the minimum only needs a rescan when its multiplicity drops to
zero, which in the convergent (lock-step) case happens once per full lap
of the group.
"""

from __future__ import annotations

from repro.core.counters.base import CounterScheme
from repro.core.counters.events import CounterEvent, WriteOutcome
from repro.lint.contracts import DELTA_BITS, GROUP_BLOCKS, REFERENCE_BITS
from repro.util.bits import BitReader, BitWriter


class DeltaCounters(CounterScheme):
    """56-bit reference + fixed-width per-block deltas, with reset and
    re-encode overflow mitigation.

    The defaults are the paper's layout contract (56 + 64*7 = 504 of 512
    metadata bits); both arguments stay overridable for the ablation
    benches that sweep field widths.
    """

    name = "delta"

    def __init__(
        self,
        total_blocks: int,
        blocks_per_group: int = GROUP_BLOCKS,
        delta_bits: int = DELTA_BITS,
        reference_bits: int = REFERENCE_BITS,
        enable_reset: bool = True,
        enable_reencode: bool = True,
    ) -> None:
        super().__init__(total_blocks, blocks_per_group)
        if delta_bits <= 0 or reference_bits <= 0:
            raise ValueError("field widths must be positive")
        self.delta_bits = delta_bits
        self.reference_bits = reference_bits
        self.enable_reset = enable_reset
        self.enable_reencode = enable_reencode
        self._delta_limit = 1 << delta_bits
        self._references = [0] * self.num_groups
        self._deltas = [0] * total_blocks
        # Incremental aggregates per group (see module docstring).
        self._min = [0] * self.num_groups
        self._min_count = [blocks_per_group] * self.num_groups
        self._max = [0] * self.num_groups

    # -- reads ----------------------------------------------------------------

    def counter(self, block_index: int) -> int:
        self._check_block(block_index)
        group = block_index // self.blocks_per_group
        return self._references[group] + self._deltas[block_index]

    def reference(self, group_index: int) -> int:
        """The group's reference counter (tests and reporting)."""
        self._check_group(group_index)
        return self._references[group_index]

    def deltas(self, group_index: int) -> list[int]:
        """Snapshot of a group's deltas (tests and reporting)."""
        self._check_group(group_index)
        return [self._deltas[b] for b in self.blocks_in_group(group_index)]

    # -- aggregate maintenance ---------------------------------------------------

    def _group_slice(self, group: int) -> slice:
        start = group * self.blocks_per_group
        return slice(start, start + self.blocks_per_group)

    def _recompute_aggregates(self, group: int) -> None:
        values = self._deltas[self._group_slice(group)]
        lowest = min(values)
        self._min[group] = lowest
        self._min_count[group] = values.count(lowest)
        self._max[group] = max(values)

    def _set_all(self, group: int, value: int) -> None:
        self._deltas[self._group_slice(group)] = (
            [value] * self.blocks_per_group
        )
        self._min[group] = value
        self._min_count[group] = self.blocks_per_group
        self._max[group] = value

    # -- the overflow-avoidance moves -----------------------------------------------

    def _do_reset(self, group: int) -> None:
        """Fold converged deltas into the reference (Figure 5b).  Caller
        guarantees min == max != 0."""
        self._references[group] += self._min[group]
        self._set_all(group, 0)

    def _try_reencode(self, group: int) -> bool:
        """Shift delta_min into the reference (Figure 5c)."""
        delta_min = self._min[group]
        if delta_min == 0:
            return False
        self._references[group] += delta_min
        sl = self._group_slice(group)
        self._deltas[sl] = [d - delta_min for d in self._deltas[sl]]
        self._min[group] = 0
        self._max[group] -= delta_min
        return True

    def _reencrypt(self, group: int, overflow_value: int) -> int:
        """Re-encrypt the group under its largest counter (Figure 5a).

        ``overflow_value`` is the would-be delta of the overflowing block
        (2^bits when a full delta wraps); R + overflow_value strictly
        exceeds every counter previously used by any block of the group,
        so the shared fresh counter is nonce-safe for all of them.
        """
        self._references[group] += overflow_value
        self._set_all(group, 0)
        return self._references[group]

    # -- the write path ---------------------------------------------------------

    def _increment(self, block_index: int) -> WriteOutcome:
        group = block_index // self.blocks_per_group
        events: list[CounterEvent] = []
        current = self._deltas[block_index]
        tentative = current + 1

        if tentative >= self._delta_limit:
            # Overflow path: re-encode if possible, else re-encrypt.
            if self.enable_reencode and self._try_reencode(group):
                events.append(CounterEvent.RE_ENCODE)
                current = self._deltas[block_index]
                tentative = current + 1
            else:
                group_counter = self._reencrypt(group, tentative)
                events.append(CounterEvent.RE_ENCRYPT)
                return WriteOutcome(
                    counter=group_counter,
                    events=tuple(events),
                    reencrypted_group=group,
                    group_counter=group_counter,
                )

        self._deltas[block_index] = tentative
        if tentative > self._max[group]:
            self._max[group] = tentative
        if current == self._min[group]:
            self._min_count[group] -= 1
            if self._min_count[group] == 0:
                self._recompute_aggregates(group)
        counter = self._references[group] + tentative
        events.append(CounterEvent.INCREMENT)
        if (
            self.enable_reset
            and self._min[group] == self._max[group]
            and self._min[group] != 0
        ):
            self._do_reset(group)
            events.append(CounterEvent.RESET)
        return WriteOutcome(counter=counter, events=tuple(events))

    # -- storage / serialization --------------------------------------------------

    @property
    def bits_per_group(self) -> int:
        return self.reference_bits + self.delta_bits * self.blocks_per_group

    def group_metadata(self, group_index: int) -> bytes:
        self._check_group(group_index)
        writer = BitWriter()
        writer.write(self._references[group_index], self.reference_bits)
        for block in self.blocks_in_group(group_index):
            writer.write(self._deltas[block], self.delta_bits)
        length = -(-writer.bit_length // 8)
        padded = -(-length // 64) * 64
        return writer.to_bytes(padded)

    def decode_metadata(self, data: bytes) -> list[int]:
        reader = BitReader(data)
        reference = reader.read(self.reference_bits)
        return [
            reference + reader.read(self.delta_bits)
            for _ in range(self.blocks_per_group)
        ]

    def restore_group_metadata(self, group_index: int, data: bytes) -> None:
        self._check_group(group_index)
        reader = BitReader(data)
        self._references[group_index] = reader.read(self.reference_bits)
        for block in self.blocks_in_group(group_index):
            self._deltas[block] = reader.read(self.delta_bits)
        self._recompute_aggregates(group_index)


__all__ = ["DeltaCounters"]
