"""Split counters (Yan et al., ISCA 2006) -- the prior-art comparator.

Each block-group shares one 64-bit *major* counter M; each block keeps a
small (7-bit by default) *minor* counter m.  A block's encryption counter
is the concatenation ``(M << minor_bits) | m``.  When a minor counter
overflows, the entire group is re-encrypted under major M+1 with all
minors zeroed (Section 2.2).

This is the scheme the paper's Table 2 compares against: same 8x storage
compaction as delta encoding, but *every* minor overflow forces a group
re-encryption -- there is no reset or re-encode escape hatch, because the
concatenation (unlike a sum) cannot absorb a common offset.
"""

from __future__ import annotations

from repro.core.counters.base import CounterScheme
from repro.core.counters.events import CounterEvent, WriteOutcome
from repro.util.bits import BitReader, BitWriter


class SplitCounters(CounterScheme):
    """64-bit major + per-block minor counters with group re-encryption."""

    name = "split"

    def __init__(
        self,
        total_blocks: int,
        blocks_per_group: int = 64,
        minor_bits: int = 7,
        major_bits: int = 64,
    ) -> None:
        super().__init__(total_blocks, blocks_per_group)
        if minor_bits <= 0 or major_bits <= 0:
            raise ValueError("counter widths must be positive")
        self.minor_bits = minor_bits
        self.major_bits = major_bits
        self._minor_limit = 1 << minor_bits
        self._majors = [0] * self.num_groups
        self._minors = [0] * total_blocks

    def counter(self, block_index: int) -> int:
        self._check_block(block_index)
        group = block_index // self.blocks_per_group
        return (self._majors[group] << self.minor_bits) | self._minors[
            block_index
        ]

    def _increment(self, block_index: int) -> WriteOutcome:
        group = block_index // self.blocks_per_group
        minor = self._minors[block_index] + 1
        if minor < self._minor_limit:
            self._minors[block_index] = minor
            return WriteOutcome(
                counter=(self._majors[group] << self.minor_bits) | minor,
                events=(CounterEvent.INCREMENT,),
            )
        # Minor overflow: re-encrypt the group under the next major.
        self._majors[group] += 1
        for block in self.blocks_in_group(group):
            self._minors[block] = 0
        group_counter = self._majors[group] << self.minor_bits
        return WriteOutcome(
            counter=group_counter,
            events=(CounterEvent.RE_ENCRYPT,),
            reencrypted_group=group,
            group_counter=group_counter,
        )

    @property
    def bits_per_group(self) -> int:
        return self.major_bits + self.minor_bits * self.blocks_per_group

    def group_metadata(self, group_index: int) -> bytes:
        self._check_group(group_index)
        writer = BitWriter()
        writer.write(self._majors[group_index], self.major_bits)
        for block in self.blocks_in_group(group_index):
            writer.write(self._minors[block], self.minor_bits)
        length = -(-writer.bit_length // 8)
        padded = -(-length // 64) * 64
        return writer.to_bytes(padded)

    def decode_metadata(self, data: bytes) -> list[int]:
        reader = BitReader(data)
        major = reader.read(self.major_bits)
        return [
            (major << self.minor_bits) | reader.read(self.minor_bits)
            for _ in range(self.blocks_per_group)
        ]

    def restore_group_metadata(self, group_index: int, data: bytes) -> None:
        self._check_group(group_index)
        reader = BitReader(data)
        self._majors[group_index] = reader.read(self.major_bits)
        for block in self.blocks_in_group(group_index):
            self._minors[block] = reader.read(self.minor_bits)

    def major(self, group_index: int) -> int:
        """Expose the major counter (used by tests and reporting)."""
        self._check_group(group_index)
        return self._majors[group_index]


__all__ = ["SplitCounters"]
