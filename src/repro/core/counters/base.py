"""Abstract interface shared by all counter-representation schemes.

A counter scheme owns the encryption counters of ``total_blocks`` 64-byte
memory blocks, arranged in block-groups of ``blocks_per_group``.  The
memory-encryption engine interacts with it through three operations:

* :meth:`CounterScheme.counter` -- the current encryption counter of a
  block (needed to decrypt it on a read),
* :meth:`CounterScheme.on_write` -- bump a block's counter before a write,
  returning a :class:`~repro.core.counters.events.WriteOutcome` that also
  tells the engine whether a whole group must be re-encrypted,
* :meth:`CounterScheme.group_metadata` -- the byte serialization of one
  group's counters, which is what actually lives in DRAM, flows through
  the metadata cache, and is hashed by the Bonsai Merkle tree.

All schemes maintain the central security invariant: a block is never
encrypted twice under the same (address, counter) nonce.  The stateful
hypothesis tests in ``tests/core/test_counter_properties.py`` check this
across arbitrary write interleavings for every scheme.
"""

from __future__ import annotations

import abc

from repro.core.counters.events import CounterStats, WriteOutcome
from repro.lint.contracts import BLOCK_BYTES, METADATA_BLOCK_BITS
from repro.obs.metrics import get_registry

METADATA_BLOCK_BYTES = METADATA_BLOCK_BITS // 8


class CounterScheme(abc.ABC):
    """Base class: group bookkeeping, stats, and the abstract operations."""

    #: short machine name used by configs and report tables
    name: str = "abstract"

    def __init__(self, total_blocks: int, blocks_per_group: int) -> None:
        if total_blocks <= 0:
            raise ValueError("total_blocks must be positive")
        if blocks_per_group <= 0:
            raise ValueError("blocks_per_group must be positive")
        if total_blocks % blocks_per_group:
            raise ValueError(
                "total_blocks must be a multiple of blocks_per_group"
            )
        self.total_blocks = total_blocks
        self.blocks_per_group = blocks_per_group
        self.num_groups = total_blocks // blocks_per_group
        # Scheme event counts live in the active registry under
        # ``counters.<scheme>.*`` (Table 2's raw inputs).
        registry = get_registry()
        self.stats = CounterStats(
            registry=registry,
            labels={"inst": registry.instance("scheme")},
            prefix=f"counters.{self.name}",
        )

    # -- geometry ----------------------------------------------------------

    def group_of(self, block_index: int) -> int:
        """Block-group index a block belongs to."""
        self._check_block(block_index)
        return block_index // self.blocks_per_group

    def slot_of(self, block_index: int) -> int:
        """Position of a block within its group."""
        self._check_block(block_index)
        return block_index % self.blocks_per_group

    def blocks_in_group(self, group_index: int) -> range:
        """All block indices of one group."""
        self._check_group(group_index)
        start = group_index * self.blocks_per_group
        return range(start, start + self.blocks_per_group)

    def _check_block(self, block_index: int) -> None:
        if not 0 <= block_index < self.total_blocks:
            raise IndexError(f"block index {block_index} out of range")

    def _check_group(self, group_index: int) -> None:
        if not 0 <= group_index < self.num_groups:
            raise IndexError(f"group index {group_index} out of range")

    # -- abstract operations -------------------------------------------------

    @abc.abstractmethod
    def counter(self, block_index: int) -> int:
        """Current encryption counter of a block."""

    @abc.abstractmethod
    def _increment(self, block_index: int) -> WriteOutcome:
        """Scheme-specific counter bump; subclasses implement this."""

    def on_write(self, block_index: int) -> WriteOutcome:
        """Advance a block's counter for a write and record statistics."""
        outcome = self._increment(block_index)
        self.stats.record(outcome, group=self.group_of(block_index))
        return outcome

    # -- storage accounting ---------------------------------------------------

    @property
    @abc.abstractmethod
    def bits_per_group(self) -> int:
        """Raw bits of counter state per block-group."""

    @property
    def metadata_blocks(self) -> int:
        """64-byte memory blocks needed to store all counters.

        Groups are padded to block boundaries (a group's metadata must be
        fetchable in a single read, per Section 4.2 "the decryption
        pipeline will perform better if both the reference value and the
        associated deltas are stored in the same memory block").
        """
        blocks_per_group_meta = max(
            1, -(-self.bits_per_group // (8 * METADATA_BLOCK_BYTES))
        )
        return self.num_groups * blocks_per_group_meta

    @property
    def storage_overhead(self) -> float:
        """Counter storage as a fraction of protected data capacity."""
        return self.metadata_blocks / self.total_blocks

    # -- serialization --------------------------------------------------------

    @abc.abstractmethod
    def group_metadata(self, group_index: int) -> bytes:
        """Serialize one group's counter state to its metadata block(s)."""

    @abc.abstractmethod
    def decode_metadata(self, data: bytes) -> list[int]:
        """Decode serialized group metadata back to per-slot counters.

        This is the *decode unit* of Figure 7: the functional engine reads
        counters from tree-verified stored bytes (never from trusted
        in-object state), so a tampered or replayed counter block yields
        wrong counters and a failing data MAC -- exactly the hardware's
        failure semantics.
        """

    @abc.abstractmethod
    def restore_group_metadata(self, group_index: int, data: bytes) -> None:
        """Load one group's counter state back from its serialization.

        The inverse of :meth:`group_metadata`, used by crash recovery to
        rebuild the scheme from checkpointed/journaled metadata blocks.
        Must round-trip byte-identically: after restoring,
        ``group_metadata(group_index)`` returns exactly ``data`` (so the
        rebuilt Bonsai leaves hash to the recorded root).
        """

    def metadata_block_of_group(self, group_index: int) -> int:
        """Index of the (first) metadata block storing a group's counters."""
        self._check_group(group_index)
        per_group = self.metadata_blocks // self.num_groups
        return group_index * per_group


__all__ = ["CounterScheme", "BLOCK_BYTES", "METADATA_BLOCK_BYTES"]
