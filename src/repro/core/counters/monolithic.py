"""Monolithic per-block counters (the SGX-style baseline).

One full-width counter (56 bits by default, matching Intel SGX [3]) per
64-byte block.  Simple and overflow-free in practice -- a 56-bit counter
"would never overflow during the lifetime of a machine" -- but costs ~11%
of protected capacity, which is exactly the overhead Section 4 attacks.

If a counter *does* wrap (reachable in tests with tiny widths), the only
sound response is a global re-encryption under a fresh key; we model it as
a :data:`~repro.core.counters.events.CounterEvent.GLOBAL_RE_ENCRYPT` event
that restarts the counter space in a new epoch.
"""

from __future__ import annotations

from repro.core.counters.base import CounterScheme
from repro.core.counters.events import CounterEvent, WriteOutcome
from repro.util.bits import BitReader, BitWriter


class MonolithicCounters(CounterScheme):
    """Full-width counter per block; groups exist only for serialization."""

    name = "monolithic"

    def __init__(
        self,
        total_blocks: int,
        counter_bits: int = 56,
        blocks_per_group: int = 64,
    ) -> None:
        super().__init__(total_blocks, blocks_per_group)
        if counter_bits <= 0:
            raise ValueError("counter_bits must be positive")
        self.counter_bits = counter_bits
        self._limit = 1 << counter_bits
        self._counters = [0] * total_blocks
        #: epoch increments on global re-encryption so nonces stay fresh
        #: (a real system would re-key; the epoch models that key change).
        self.epoch = 0

    def counter(self, block_index: int) -> int:
        self._check_block(block_index)
        return self._counters[block_index]

    def _increment(self, block_index: int) -> WriteOutcome:
        value = self._counters[block_index] + 1
        if value < self._limit:
            self._counters[block_index] = value
            return WriteOutcome(counter=value, events=(CounterEvent.INCREMENT,))
        # Counter exhausted: global re-encryption under a new epoch/key.
        self.epoch += 1
        self._counters = [0] * self.total_blocks
        return WriteOutcome(
            counter=0,
            events=(CounterEvent.GLOBAL_RE_ENCRYPT,),
        )

    @property
    def bits_per_group(self) -> int:
        return self.counter_bits * self.blocks_per_group

    def group_metadata(self, group_index: int) -> bytes:
        writer = BitWriter()
        for block in self.blocks_in_group(group_index):
            writer.write(self._counters[block], self.counter_bits)
        length = -(-writer.bit_length // 8)
        # Pad to whole 64-byte metadata blocks.
        padded = -(-length // 64) * 64
        return writer.to_bytes(padded)

    def decode_metadata(self, data: bytes) -> list[int]:
        reader = BitReader(data)
        return [
            reader.read(self.counter_bits)
            for _ in range(self.blocks_per_group)
        ]

    def restore_group_metadata(self, group_index: int, data: bytes) -> None:
        self._check_group(group_index)
        reader = BitReader(data)
        for block in self.blocks_in_group(group_index):
            self._counters[block] = reader.read(self.counter_bits)


__all__ = ["MonolithicCounters"]
