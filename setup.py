"""Setup shim for environments without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables the
legacy editable-install path (`pip install -e . --no-build-isolation`)
on offline machines where PEP 660 wheel builds are unavailable.
"""

from setuptools import setup

setup()
