#!/usr/bin/env python3
"""A tamper-evident key-value store built on the public API.

The intro's motivating scenario: an application keeps sensitive state in
off-chip memory that an attacker with physical access can snoop or
rewrite.  This example layers a tiny fixed-slot KV store over
:class:`repro.SecureMemory` and demonstrates that the two classic
attacks -- direct modification and state rollback -- are caught, while
random DRAM faults are healed.

Run:  python examples/secure_kv_store.py
"""

import os

from repro import IntegrityError, SecureMemory, preset

BLOCK = 64
SLOTS = 128


class SecureKVStore:
    """Fixed-capacity string store: one 64-byte block per key slot."""

    def __init__(self, memory: SecureMemory):
        self._memory = memory
        self._directory = {}  # key -> slot
        self._free = list(range(SLOTS))

    def put(self, key: str, value: str) -> None:
        encoded = value.encode()
        if len(encoded) > BLOCK - 1:
            raise ValueError("value too large for one slot")
        slot = self._directory.get(key)
        if slot is None:
            if not self._free:
                raise RuntimeError("store full")
            slot = self._free.pop()
            self._directory[key] = slot
        payload = bytes([len(encoded)]) + encoded
        self._memory.write(slot * BLOCK, payload.ljust(BLOCK, b"\x00"))

    def get(self, key: str) -> str:
        slot = self._directory[key]
        raw = self._memory.read(slot * BLOCK).data
        return raw[1 : 1 + raw[0]].decode()

    def slot_address(self, key: str) -> int:
        return self._directory[key] * BLOCK


def main() -> None:
    memory = SecureMemory(
        preset("combined", protected_bytes=SLOTS * BLOCK,
               blocks_per_group=32, keystream_mode="fast"),
        os.urandom(48),
    )
    store = SecureKVStore(memory)

    store.put("alice/balance", "1000")
    store.put("bob/balance", "50")
    store.put("audit/last", "2026-07-07T09:00:00Z")
    print("alice/balance =", store.get("alice/balance"))
    print("bob/balance   =", store.get("bob/balance"))

    # -- attack 1: flip ciphertext bits to try to alter a balance ----------
    address = store.slot_address("bob/balance")
    memory.flip_data_bits(address, [40, 41, 42, 43, 44])
    try:
        store.get("bob/balance")
        print("ATTACK SUCCEEDED (should not happen)")
    except IntegrityError as error:
        print(f"bit-flip attack on bob/balance rejected: kind={error.kind}")
    memory.flip_data_bits(address, [40, 41, 42, 43, 44])  # restore

    # -- attack 2: roll the balance back after spending ----------------------
    snapshot = memory.snapshot_block(store.slot_address("alice/balance"))
    store.put("alice/balance", "1")  # alice spends almost everything
    memory.rollback_block(store.slot_address("alice/balance"), snapshot)
    try:
        store.get("alice/balance")
        print("REPLAY SUCCEEDED (should not happen)")
    except IntegrityError as error:
        print(f"rollback of alice/balance rejected:          kind={error.kind}")

    # -- a genuine DRAM fault, by contrast, heals transparently -------------
    store.put("alice/balance", "1")  # re-establish good state
    memory.flip_data_bits(store.slot_address("alice/balance"), [7])
    value = store.get("alice/balance")
    print(f"single-bit DRAM fault healed, alice/balance = {value!r}")
    print(
        f"(flip-and-check corrections so far: "
        f"{memory.counters.corrections})"
    )


if __name__ == "__main__":
    main()
