#!/usr/bin/env python3
"""Counter representations head-to-head on three write patterns.

Drives the four counter schemes with the three canonical write shapes
from the paper's Section 4 discussion and prints how often each one is
forced to re-encrypt a block-group:

* lock-step streaming (dedup-like)    -- delta resets win outright;
* isolated hot block (canneal-like)   -- delta == split, widening helps;
* straddling hot pair (facesim-like)  -- dual-length's worst case.

Run:  python examples/counter_scheme_comparison.py
"""

from repro.core.counters import make_scheme
from repro.harness.reporting import format_table

BLOCKS = 256  # 4 block-groups
LAPS = 2000


def lockstep_stream(scheme):
    for _ in range(LAPS // 4):
        for block in range(BLOCKS):
            scheme.on_write(block)


def isolated_hot_block(scheme):
    for _ in range(LAPS * 8):
        scheme.on_write(37)  # lone hot block, neighbours never written


def straddling_hot_pair(scheme):
    for _ in range(LAPS * 4):
        scheme.on_write(0)  # delta-group 0 of block-group 0
        scheme.on_write(16)  # delta-group 1 of the same block-group


WORKLOADS = {
    "lock-step stream": lockstep_stream,
    "isolated hot block": isolated_hot_block,
    "straddling hot pair": straddling_hot_pair,
}

SCHEMES = ("monolithic", "split", "delta", "dual_length")


def main() -> None:
    rows = []
    for workload_name, driver in WORKLOADS.items():
        for scheme_name in SCHEMES:
            scheme = make_scheme(scheme_name, BLOCKS)
            driver(scheme)
            stats = scheme.stats
            rows.append(
                [
                    f"{workload_name} / {scheme_name}",
                    stats.re_encryptions,
                    stats.resets,
                    stats.re_encodes,
                    stats.widens,
                    f"{100 * scheme.storage_overhead:.2f}%",
                ]
            )
    print(
        format_table(
            "Counter schemes under the paper's three write shapes "
            f"({BLOCKS} blocks, {LAPS} laps equivalent)",
            ["workload / scheme", "re-enc", "resets", "re-encodes",
             "widens", "storage"],
            rows,
        )
    )
    print(
        "\nreadings: 'lock-step stream' -> delta/dual absorb everything;\n"
        "'isolated hot block' -> delta equals split, dual widens to 10 "
        "bits;\n'straddling hot pair' -> dual re-encrypts MORE than 7-bit "
        "delta\n(the facesim row of Table 2)."
    )


if __name__ == "__main__":
    main()
