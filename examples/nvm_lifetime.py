#!/usr/bin/env python3
"""Non-volatile main-memory wear: extra writes caused by re-encryption.

Section 2.2's NVMM motivation: every block-group re-encryption rewrites
the whole group (64 blocks), so a counter scheme's overflow rate directly
multiplies write wear on endurance-limited memory.  This example replays
a PARSEC-like write-back stream into each compact counter scheme and
reports the *write amplification* each one would impose on an NVMM.

Run:  python examples/nvm_lifetime.py
"""

from repro.core.counters import make_scheme
from repro.harness.reporting import format_table
from repro.harness.runner import WritebackFilter
from repro.workloads.parsec import profile

REGION_BLOCKS = 32 * 1024 * 1024 // 64
APPS = ("dedup", "facesim", "canneal", "vips")
SCHEMES = ("split", "delta", "dual_length")


def main() -> None:
    rows = []
    for app in APPS:
        traces = profile(app).traces(400_000, REGION_BLOCKS, cores=4, seed=1)
        writebacks, _ = WritebackFilter().filter(traces)
        demand_writes = len(writebacks)
        for scheme_name in SCHEMES:
            scheme = make_scheme(scheme_name, REGION_BLOCKS)
            for block in writebacks:
                scheme.on_write(block)
            extra = scheme.stats.re_encryptions * scheme.blocks_per_group
            amplification = (demand_writes + extra) / demand_writes
            rows.append(
                [
                    f"{app} / {scheme_name}",
                    demand_writes,
                    scheme.stats.re_encryptions,
                    extra,
                    f"{amplification:.4f}x",
                ]
            )
    print(
        format_table(
            "NVMM write amplification from counter-overflow re-encryption",
            ["workload / scheme", "demand writes", "re-encryptions",
             "extra block writes", "amplification"],
            rows,
        )
    )
    print(
        "\nSplit counters re-encrypt orders of magnitude more often on "
        "streaming\nworkloads; delta encoding keeps amplification near "
        "1.0x, which is the\npaper's argument that it is 'more efficient "
        "and non-volatile memory\nfriendly' (Section 5.3)."
    )


if __name__ == "__main__":
    main()
