#!/usr/bin/env python3
"""Where the cycles go: metadata traffic across engine configurations.

Runs one memory-bound workload (canneal) through the trace-driven system
under each Figure 8 configuration and breaks down exactly *why* the
optimized configurations are faster: fewer counter fetches (denser
metadata), zero MAC fetches (the ECC side-band), fewer tree-node fetches
(a shallower Bonsai tree), and the resulting energy difference.

Run:  python examples/timing_deep_dive.py
"""

from repro.analysis.energy import measure_backend_energy
from repro.core.engine.config import preset
from repro.core.engine.timing import EncryptionTimingBackend
from repro.harness.charts import bar_chart
from repro.harness.reporting import format_table
from repro.memsim.cpu.system import PlainMemoryBackend, TraceDrivenSystem
from repro.workloads.parsec import profile

REGION = 32 * 1024 * 1024
CONFIGS = ("bmt_baseline", "mac_in_ecc", "delta_only", "combined")


def main() -> None:
    traces = profile("canneal").traces(
        20_000, REGION // 64, cores=4, seed=7
    )

    plain = TraceDrivenSystem(PlainMemoryBackend())
    plain_ipc = plain.run([list(t) for t in traces]).ipc

    rows = []
    normalized = {}
    for name in CONFIGS:
        backend = EncryptionTimingBackend(
            preset(name, protected_bytes=REGION)
        )
        result = TraceDrivenSystem(backend).run([list(t) for t in traces])
        stats = backend.stats
        energy = measure_backend_energy(name, backend)
        demand = stats.demand_reads + stats.demand_writes
        normalized[name] = result.ipc / plain_ipc
        rows.append(
            [
                name,
                stats.counter_fetches,
                stats.tree_fetches,
                stats.mac_fetches,
                round(stats.extra_transactions / max(demand, 1), 2),
                backend.layout.offchip_tree_levels,
                round(backend.metadata_cache.stats.hit_rate, 3),
                round(energy.per_access_nj(max(demand, 1)), 2),
            ]
        )

    print(f"plain (no encryption) IPC: {plain_ipc:.3f}\n")
    print(
        format_table(
            "Metadata traffic breakdown (canneal, 32 MB region)",
            ["config", "ctr fetch", "tree fetch", "mac fetch",
             "extra txn/miss", "levels", "meta hit", "nJ/access"],
            rows,
        )
    )
    print()
    print(
        bar_chart(
            "IPC normalized to no encryption",
            normalized,
            maximum=1.0,
        )
    )
    print(
        "\nreading: MAC-in-ECC zeroes the 'mac fetch' column; delta "
        "encoding removes\na tree level and multiplies the metadata "
        "cache's reach; combined does both."
    )


if __name__ == "__main__":
    main()
