#!/usr/bin/env python3
"""MAC-in-ECC vs conventional SEC-DED under injected DRAM faults.

Reproduces the Figure 3 comparison interactively: prints the bit layout
of the repurposed ECC field (Figure 2), injects each fault pattern into
both schemes, and runs a parity-assisted scrub pass (Section 3.3).

Run:  python examples/ecc_fault_injection.py
"""

import os
import random

from repro.analysis.faults import figure3_scenarios, run_fault_matrix
from repro.core.ecc_mac.layout import MacEccCodec
from repro.core.ecc_mac.scrubber import Scrubber
from repro.crypto.mac import CarterWegmanMac
from repro.harness.reporting import format_table


def show_layout() -> None:
    print("Figure 2 -- the 64 ECC bits per 64-byte block, repurposed:")
    print("  bits  0..55  56-bit Carter-Wegman MAC over the ciphertext")
    print("  bits 56..62  7-bit Hamming SEC-DED over the MAC itself")
    print("  bit      63  even parity over the ciphertext (scrub bit)")

    codec = MacEccCodec(CarterWegmanMac(os.urandom(24), mode="fast"))
    ciphertext = os.urandom(64)
    field = codec.build(ciphertext, address=0x1000, counter=7)
    print(f"\n  example field: {field.pack().hex()}")
    print(f"    mac       = {field.mac:#016x}")
    print(f"    mac_check = {field.mac_check:#04x}")
    print(f"    ct_parity = {field.ct_parity}")


def show_fault_matrix() -> None:
    matrix = run_fault_matrix(trials=10, seed=1)
    rows = []
    for scenario in figure3_scenarios():
        rows.append(
            [
                scenario.description,
                matrix.dominant(scenario.name, "secded").value,
                matrix.dominant(scenario.name, "mac_ecc").value,
            ]
        )
    print()
    print(
        format_table(
            "Figure 3 -- dominant outcome per fault pattern (10 trials)",
            ["fault pattern", "conventional SEC-DED", "MAC-based ECC"],
            rows,
        )
    )
    print(
        "\nNote the asymmetry on '3 flips inside one 8-byte word': "
        "SEC-DED silently *miscorrects*, the MAC always detects."
    )


def show_scrubbing() -> None:
    rng = random.Random(9)
    codec = MacEccCodec(CarterWegmanMac(os.urandom(24), mode="fast"))
    blocks = []
    for i in range(64):
        ciphertext = bytes(rng.randrange(256) for _ in range(64))
        blocks.append([i * 64, ciphertext, codec.build(ciphertext, i * 64, 1)])

    # Inject latent single-bit upsets into three blocks.
    for index in (5, 21, 40):
        corrupted = bytearray(blocks[index][1])
        corrupted[rng.randrange(64)] ^= 1 << rng.randrange(8)
        blocks[index][1] = bytes(corrupted)

    report = Scrubber(codec).scrub(tuple(b) for b in blocks)
    print(
        f"\nscrub pass: {report.blocks_scanned} blocks scanned, "
        f"suspicious at {report.suspicious_blocks} "
        f"(expected [{5 * 64}, {21 * 64}, {40 * 64}])"
    )
    print("only parity checks were needed -- no MAC recomputation.")


if __name__ == "__main__":
    show_layout()
    show_fault_matrix()
    show_scrubbing()
