#!/usr/bin/env python3
"""Quickstart: authenticated, encrypted, error-correcting memory.

Builds the paper's *combined* configuration (delta-encoded counters +
MAC-in-ECC) over a 1 MB protected region and walks through the complete
feature set: encrypted writes/reads, DRAM-fault correction via
flip-and-check, tamper detection, and replay detection.

Run:  python examples/quickstart.py
"""

import os

from repro import IntegrityError, SecureMemory, preset


def main() -> None:
    # 48 bytes of key material: 16 (AES-CTR) + 24 (MAC) + 8 (tree).
    key = os.urandom(48)
    config = preset(
        "combined",
        protected_bytes=1024 * 1024,
        keystream_mode="fast",  # simulation-speed keystream; "aes" for real
    )
    memory = SecureMemory(config, key)
    print(f"protected region : {config.protected_bytes // 1024} KiB")
    print(f"counter scheme   : {config.counter_scheme}")
    print(f"MAC placement    : {'ECC bits' if config.mac_in_ecc else 'separate'}")
    print(f"tree levels      : {memory.tree.geometry.level_sizes}")

    # -- encrypted storage ------------------------------------------------
    secret = b"attack at dawn".ljust(64, b"\x00")
    memory.write(0x0000, secret)
    print("\nwrite + read     :", memory.read(0x0000).data[:14])

    ciphertext = memory.ciphertexts[0]
    print("ciphertext (hex) :", ciphertext[:14].hex(), "...")
    assert ciphertext != secret

    # -- DRAM faults are corrected transparently ---------------------------
    memory.flip_data_bits(0x0000, [100])  # a cosmic ray
    result = memory.read(0x0000)
    print(
        f"\n1-bit fault      : corrected bit {result.corrected_bits}, "
        f"{result.correction_checks} MAC check(s)"
    )
    memory.flip_data_bits(0x0000, [3, 400])  # a double upset
    result = memory.read(0x0000)
    print(
        f"2-bit fault      : corrected bits {tuple(sorted(result.corrected_bits))}, "
        f"{result.correction_checks} MAC check(s)"
    )

    # -- tampering is detected ---------------------------------------------
    memory.flip_data_bits(0x0000, [1, 2, 3, 4, 5, 6, 7, 8])
    try:
        memory.read(0x0000)
    except IntegrityError as error:
        print(f"\n8-bit tamper     : rejected ({error.kind}: {error})")
    memory.flip_data_bits(0x0000, [1, 2, 3, 4, 5, 6, 7, 8])  # undo

    # -- replay attacks are detected ----------------------------------------
    memory.write(0x40, b"balance: $1,000,000".ljust(64, b"\x00"))
    snapshot = memory.snapshot_block(0x40)  # attacker records everything
    memory.write(0x40, b"balance: $5".ljust(64, b"\x00"))
    memory.rollback_block(0x40, snapshot)  # ...and puts it all back
    try:
        memory.read(0x40)
    except IntegrityError as error:
        print(f"replay attack    : rejected ({error.kind})")

    print(
        f"\nengine counters  : {memory.counters.reads} reads, "
        f"{memory.counters.writes} writes, "
        f"{memory.counters.corrections} corrections"
    )


if __name__ == "__main__":
    main()
